#include "obs/txn_tracer.hh"

#include <algorithm>
#include <fstream>
#include <functional>
#include <iomanip>
#include <limits>
#include <ostream>

#include "obs/flight_recorder.hh"
#include "obs/json.hh"
#include "proto/packet.hh"

namespace limitless
{

namespace
{

/** Phase a network leg belongs to, by the opcode it carries. */
const char *
legKind(Opcode op)
{
    switch (op) {
      case Opcode::RREQ:
      case Opcode::WREQ:
      case Opcode::RUNC:
      case Opcode::WUPD:
      case Opcode::REPC:
        return "req_net";
      case Opcode::RDATA:
      case Opcode::WDATA:
      case Opcode::MUPD:
      case Opcode::WACK:
      case Opcode::REPC_ACK:
        return "reply_net";
      case Opcode::INV:
        return "inv_net";
      case Opcode::ACKC:
      case Opcode::UPDATE:
      case Opcode::REPM:
        return "ack_net";
      case Opcode::BUSY:
        return "busy_net";
      default:
        return "net";
    }
}

void
writeDouble(std::ostream &os, double v)
{
    os << std::setprecision(std::numeric_limits<double>::max_digits10)
       << v;
}

void
writeReservoir(std::ostream &os, const QuantileReservoir &r)
{
    os << "{\"p50\": ";
    writeDouble(os, r.quantile(0.50));
    os << ", \"p95\": ";
    writeDouble(os, r.quantile(0.95));
    os << ", \"p99\": ";
    writeDouble(os, r.quantile(0.99));
    os << ", \"mean\": ";
    writeDouble(os, r.mean());
    os << ", \"count\": " << r.count()
       << ", \"exact\": " << (r.exact() ? "true" : "false") << "}";
}

void
writePhases(std::ostream &os, const PhaseSample &s)
{
    os << "{\"req_net\": ";
    writeDouble(os, s.reqNet);
    os << ", \"home\": ";
    writeDouble(os, s.home);
    os << ", \"trap\": ";
    writeDouble(os, s.trap);
    os << ", \"inv\": ";
    writeDouble(os, s.inv);
    os << ", \"reply_net\": ";
    writeDouble(os, s.replyNet);
    os << ", \"total\": ";
    writeDouble(os, s.total);
    os << "}";
}

} // namespace

void
PhaseReservoirs::writeJson(std::ostream &os) const
{
    os << "{\"req_net\": ";
    writeReservoir(os, reqNet);
    os << ", \"home\": ";
    writeReservoir(os, home);
    os << ", \"trap\": ";
    writeReservoir(os, trap);
    os << ", \"inv\": ";
    writeReservoir(os, inv);
    os << ", \"reply_net\": ";
    writeReservoir(os, replyNet);
    os << ", \"total\": ";
    writeReservoir(os, total);
    os << "}";
}

// --------------------------------------------------------------------
// Lifecycle
// --------------------------------------------------------------------

void
TxnTracer::enable(std::size_t top_k)
{
    reset();
    _topK = top_k ? top_k : 1;
    _enabled = true;
}

void
TxnTracer::reset()
{
    _enabled = false;
    _nextId = 0;
    _completed = 0;
    _abandoned = 0;
    _open.clear();
    _byKey.clear();
    _slowest.clear();
    _quantiles.reset();
}

TxnRecord *
TxnTracer::byId(std::uint64_t id)
{
    auto it = _open.find(id);
    return it == _open.end() ? nullptr : &it->second;
}

std::uint32_t
TxnTracer::addSpan(TxnRecord &rec, std::uint32_t parent, const char *kind,
                   NodeId node, Tick start, Tick end)
{
    TxnSpan span;
    span.parent = parent;
    span.kind = kind;
    span.node = node;
    span.start = start;
    span.end = end;
    rec.spans.push_back(span);
    return static_cast<std::uint32_t>(rec.spans.size());
}

// --------------------------------------------------------------------
// Requester-side hooks
// --------------------------------------------------------------------

void
TxnTracer::onInject(Tick now, NodeId requester, Addr line, bool write)
{
    if (!_enabled)
        return;
    const std::uint64_t k = key(requester, line);
    auto stale = _byKey.find(k);
    if (stale != _byKey.end()) {
        // Mirrors LatencyTracker::onInject: a re-injection under the
        // same key supersedes the stale record.
        _open.erase(stale->second);
        ++_abandoned;
    }
    const std::uint64_t id = ++_nextId;
    TxnRecord rec;
    rec.id = id;
    rec.requester = requester;
    rec.line = line;
    rec.write = write;
    rec.start = now;
    addSpan(rec, 0, "txn", requester, now, 0);
    _open.emplace(id, std::move(rec));
    _byKey[k] = id;
}

void
TxnTracer::tagRequest(Packet &pkt, NodeId requester)
{
    if (!_enabled || pkt.operands.empty())
        return;
    auto it = _byKey.find(key(requester, pkt.operands[0]));
    if (it == _byKey.end())
        return;
    pkt.txnId = it->second;
}

void
TxnTracer::onBusyBackoff(NodeId requester, Addr line, Tick now, Tick delay,
                         std::uint64_t round)
{
    if (!_enabled)
        return;
    auto it = _byKey.find(key(requester, line));
    if (it == _byKey.end())
        return;
    if (TxnRecord *rec = byId(it->second)) {
        const std::uint32_t id =
            addSpan(*rec, 1, "busy_backoff", requester, now, now + delay);
        rec->spans[id - 1].arg = round;
    }
}

// --------------------------------------------------------------------
// Network hooks
// --------------------------------------------------------------------

void
TxnTracer::onNetSend(Packet &pkt, Tick now)
{
    TxnRecord *rec = byId(pkt.txnId);
    if (!rec) {
        // Transaction already finalized (e.g. a stale ACK): drop the
        // tag so later hooks don't touch a recycled span id.
        pkt.legSpan = 0;
        return;
    }
    const std::uint32_t parent = pkt.causeSpan ? pkt.causeSpan : 1;
    const std::uint32_t id =
        addSpan(*rec, parent, legKind(pkt.opcode), pkt.src, now, 0);
    TxnSpan &span = rec->spans[id - 1];
    span.peer = pkt.dest;
    span.detail = opcodeName(pkt.opcode);
    pkt.legSpan = id;
}

void
TxnTracer::onNetDeliver(Packet &pkt, Tick now)
{
    TxnRecord *rec = byId(pkt.txnId);
    if (!rec || pkt.legSpan == 0 || pkt.legSpan > rec->spans.size())
        return;
    TxnSpan &span = rec->spans[pkt.legSpan - 1];
    if (span.end == 0)
        span.end = now;
    // pkt.legSpan stays set: the home uses the closed leg's end as the
    // start of the service-queue wait.
}

// --------------------------------------------------------------------
// Home-side hooks
// --------------------------------------------------------------------

void
TxnTracer::onHomeService(std::uint64_t txn, std::uint32_t leg_span,
                         NodeId home, Opcode op, Tick svc_start,
                         Tick svc_end)
{
    TxnRecord *rec = byId(txn);
    if (!rec)
        return;
    Tick arrived = 0;
    if (leg_span && leg_span <= rec->spans.size())
        arrived = rec->spans[leg_span - 1].end;
    // Deferred requests get serviced several times; start each round's
    // queue window at the previous round's progress watermark so the
    // waterfall shows abutting, not overlapping, home-side spans.
    const Tick queue_from = std::max(arrived, rec->homeProgress);
    if (queue_from && svc_start > queue_from)
        addSpan(*rec, 1, "queue_home", home, queue_from, svc_start);
    const std::uint32_t id =
        addSpan(*rec, 1, "home_service", home, svc_start, svc_end);
    rec->spans[id - 1].detail = opcodeName(op);
    rec->homeProgress = svc_end;
}

void
TxnTracer::onInvSend(Packet &inv, NodeId home, Tick start)
{
    TxnRecord *rec = byId(inv.txnId);
    if (!rec)
        return;
    const std::uint32_t id =
        addSpan(*rec, 1, "inv_sharer", home, start, 0);
    rec->spans[id - 1].peer = inv.dest;
    inv.causeSpan = id;
}

void
TxnTracer::onInvAck(std::uint64_t txn, std::uint32_t sharer_span, Tick now)
{
    TxnRecord *rec = byId(txn);
    if (!rec || sharer_span == 0 || sharer_span > rec->spans.size())
        return;
    TxnSpan &span = rec->spans[sharer_span - 1];
    if (span.end == 0)
        span.end = now;
}

void
TxnTracer::onTrapCharge(std::uint64_t txn, NodeId home, Tick now,
                        Tick cycles)
{
    TxnRecord *rec = byId(txn);
    if (!rec)
        return;
    const std::uint32_t id =
        addSpan(*rec, 1, "trap_charge", home, now, now + cycles);
    rec->spans[id - 1].arg = cycles;
}

void
TxnTracer::onTrapEnqueue(Packet &pkt, NodeId home, Tick now)
{
    TxnRecord *rec = byId(pkt.txnId);
    if (!rec) {
        pkt.legSpan = 0;
        return;
    }
    pkt.legSpan = addSpan(*rec, 1, "trap_queue", home, now, 0);
}

void
TxnTracer::onTrapEmulate(std::uint64_t txn, std::uint32_t enq_span,
                         NodeId home, Tick now, Tick cost)
{
    TxnRecord *rec = byId(txn);
    if (!rec)
        return;
    if (enq_span && enq_span <= rec->spans.size()) {
        TxnSpan &queue = rec->spans[enq_span - 1];
        if (queue.end == 0)
            queue.end = now;
    }
    const std::uint32_t id =
        addSpan(*rec, 1, "trap_emulate", home, now, now + cost);
    rec->spans[id - 1].arg = cost;
}

// --------------------------------------------------------------------
// Completion
// --------------------------------------------------------------------

void
TxnTracer::onPhaseSample(const PhaseSample &sample)
{
    if (!_enabled)
        return;
    const std::uint64_t k = key(sample.requester, sample.line);
    auto kit = _byKey.find(k);
    if (kit == _byKey.end())
        return;
    auto it = _open.find(kit->second);
    _byKey.erase(kit);
    if (it == _open.end())
        return;
    TxnRecord rec = std::move(it->second);
    _open.erase(it);

    rec.phases = sample;
    rec.end = sample.end;
    finalize(rec);
    computeCritical(rec);
    _quantiles.add(sample);
    ++_completed;
    emitChrome(rec);
    keepIfSlow(std::move(rec));
}

void
TxnTracer::finalize(TxnRecord &rec)
{
    // Close the root and anything still open, then clamp every child
    // into its parent's window. Parents precede children in the vector
    // (spans are appended as causality unfolds), so one forward pass
    // suffices and guarantees the nesting invariant the property test
    // checks: child ⊆ parent ⊆ root.
    rec.spans[0].end = rec.end;
    for (std::size_t i = 1; i < rec.spans.size(); ++i) {
        TxnSpan &span = rec.spans[i];
        if (span.end == 0)
            span.end = rec.end;
        const TxnSpan &parent = rec.spans[span.parent - 1];
        span.start = std::max(span.start, parent.start);
        span.end = std::min(span.end, parent.end);
        if (span.end < span.start)
            span.end = span.start;
    }
}

void
TxnTracer::computeCritical(TxnRecord &rec) const
{
    // Backward greedy walk: within a span's window, time is attributed
    // to the child whose interval covers the cursor with the latest
    // end; gaps no child covers belong to the span itself. Segments
    // therefore tile the root's [start, end] exactly.
    const std::size_t n = rec.spans.size();
    std::vector<std::vector<std::uint32_t>> kids(n + 1);
    for (std::size_t i = 1; i < n; ++i)
        kids[rec.spans[i].parent].push_back(
            static_cast<std::uint32_t>(i + 1));
    for (auto &list : kids)
        std::sort(list.begin(), list.end(),
                  [&rec](std::uint32_t a, std::uint32_t b) {
                      const TxnSpan &sa = rec.spans[a - 1];
                      const TxnSpan &sb = rec.spans[b - 1];
                      if (sa.end != sb.end)
                          return sa.end > sb.end;
                      return a > b;
                  });

    rec.critical.clear();
    const auto emit = [&rec](const char *kind, std::uint32_t span,
                             Tick start, Tick end) {
        if (end > start)
            rec.critical.push_back(TxnCritSeg{kind, span, start, end});
    };

    // Tree depth is bounded (root -> sharer span -> leg), so plain
    // recursion is safe.
    const std::function<void(std::uint32_t, Tick, Tick)> walk =
        [&](std::uint32_t id, Tick win_start, Tick win_end) {
            const TxnSpan &span = rec.spans[id - 1];
            Tick cursor = win_end;
            for (std::uint32_t child_id : kids[id]) {
                if (cursor <= win_start)
                    break;
                const TxnSpan &child = rec.spans[child_id - 1];
                const Tick ce = std::min(child.end, cursor);
                const Tick cs = std::max(child.start, win_start);
                if (ce <= cs)
                    continue;
                emit(span.kind, id, ce, cursor);
                walk(child_id, cs, ce);
                cursor = cs;
            }
            emit(span.kind, id, win_start, cursor);
        };
    walk(1, rec.spans[0].start, rec.spans[0].end);
    std::reverse(rec.critical.begin(), rec.critical.end());
}

void
TxnTracer::keepIfSlow(TxnRecord &&rec)
{
    // Min-heap on retention rank (total desc, id asc): the heap top is
    // the lowest-ranked retained transaction, evicted when a
    // higher-ranked one completes. outranks(a, b) doubles as the heap's
    // less-than: the comp-"largest" element — the one NOT outranking
    // anything — surfaces at the top.
    const auto outranks = [](const TxnRecord &a, const TxnRecord &b) {
        if (a.phases.total != b.phases.total)
            return a.phases.total > b.phases.total;
        return a.id < b.id;
    };
    if (_slowest.size() < _topK) {
        _slowest.push_back(std::move(rec));
        std::push_heap(_slowest.begin(), _slowest.end(), outranks);
        return;
    }
    if (!outranks(rec, _slowest.front()))
        return; // rec ranks below the lowest retained
    std::pop_heap(_slowest.begin(), _slowest.end(), outranks);
    _slowest.back() = std::move(rec);
    std::push_heap(_slowest.begin(), _slowest.end(), outranks);
}

// --------------------------------------------------------------------
// Chrome trace_event emission
// --------------------------------------------------------------------

void
TxnTracer::emitChrome(const TxnRecord &rec) const
{
    FlightRecorder &fr = FlightRecorder::instance();
    if (!fr.tracing())
        return;
    for (std::size_t i = 0; i < rec.spans.size(); ++i) {
        const TxnSpan &span = rec.spans[i];
        std::ostream *os = fr.traceRawEvent(rec.line);
        if (!os)
            return; // line filtered out (the filter is per-line)
        *os << "{\"name\":";
        jsonEscape(*os, span.kind);
        *os << ",\"cat\":\"txn\",\"ph\":\"X\",\"ts\":" << span.start
            << ",\"dur\":" << (span.end - span.start)
            << ",\"pid\":0,\"tid\":"
            << (span.node == invalidNode ? 0 : span.node)
            << ",\"args\":{\"txn\":" << rec.id << ",\"span\":" << (i + 1)
            << ",\"parent\":" << span.parent << ",\"line\":\"0x"
            << std::hex << rec.line << std::dec << "\"";
        if (span.peer != invalidNode)
            *os << ",\"peer\":" << span.peer;
        if (span.detail)
            *os << ",\"detail\":\"" << span.detail << "\"";
        if (span.arg)
            *os << ",\"arg\":" << span.arg;
        *os << "}}";

        // Network legs additionally get a flow arrow from the sending
        // node's slice to the receiving node, so the viewer draws the
        // transaction's causal chain across tid rows.
        if (span.peer == invalidNode || span.parent == 0)
            continue;
        const std::uint64_t flow = rec.id * 4096 + (i + 1);
        if ((os = fr.traceRawEvent(rec.line)) == nullptr)
            return;
        *os << "{\"name\":\"txn_flow\",\"cat\":\"txn\",\"ph\":\"s\",\"id\":"
            << flow << ",\"ts\":" << span.start << ",\"pid\":0,\"tid\":"
            << (span.node == invalidNode ? 0 : span.node) << "}";
        if ((os = fr.traceRawEvent(rec.line)) == nullptr)
            return;
        *os << "{\"name\":\"txn_flow\",\"cat\":\"txn\",\"ph\":\"f\","
               "\"bp\":\"e\",\"id\":"
            << flow << ",\"ts\":" << span.end << ",\"pid\":0,\"tid\":"
            << span.peer << "}";
    }
}

// --------------------------------------------------------------------
// JSON export (schema limitless-txn-v1)
// --------------------------------------------------------------------

std::vector<const TxnRecord *>
TxnTracer::top() const
{
    std::vector<const TxnRecord *> out;
    out.reserve(_slowest.size());
    for (const TxnRecord &rec : _slowest)
        out.push_back(&rec);
    std::sort(out.begin(), out.end(),
              [](const TxnRecord *a, const TxnRecord *b) {
                  if (a->phases.total != b->phases.total)
                      return a->phases.total > b->phases.total;
                  return a->id < b->id;
              });
    return out;
}

void
TxnTracer::writeJson(std::ostream &os) const
{
    os << "{\n"
       << "  \"schema\": \"limitless-txn-v1\",\n"
       << "  \"version\": 1,\n"
       << "  \"completed\": " << _completed << ",\n"
       << "  \"unfinished\": " << _open.size() << ",\n"
       << "  \"abandoned\": " << _abandoned << ",\n"
       << "  \"top_k\": " << _topK << ",\n"
       << "  \"phase_quantiles\": ";
    _quantiles.writeJson(os);
    os << ",\n  \"top\": [";
    bool first_rec = true;
    for (const TxnRecord *rec : top()) {
        os << (first_rec ? "\n" : ",\n");
        first_rec = false;
        os << "    {\"id\": " << rec->id << ", \"requester\": "
           << rec->requester << ", \"line\": \"0x" << std::hex
           << rec->line << std::dec << "\", \"write\": "
           << (rec->write ? "true" : "false") << ", \"start\": "
           << rec->start << ", \"end\": " << rec->end << ",\n"
           << "     \"phases\": ";
        writePhases(os, rec->phases);
        os << ",\n     \"spans\": [";
        for (std::size_t i = 0; i < rec->spans.size(); ++i) {
            const TxnSpan &span = rec->spans[i];
            os << (i ? ",\n                " : "") << "{\"id\": "
               << (i + 1) << ", \"parent\": " << span.parent
               << ", \"kind\": ";
            jsonEscape(os, span.kind);
            os << ", \"node\": "
               << (span.node == invalidNode ? -1
                                            : static_cast<int>(span.node));
            if (span.peer != invalidNode)
                os << ", \"peer\": " << span.peer;
            os << ", \"start\": " << span.start << ", \"end\": "
               << span.end;
            if (span.detail)
                os << ", \"detail\": \"" << span.detail << "\"";
            if (span.arg)
                os << ", \"arg\": " << span.arg;
            os << "}";
        }
        os << "],\n     \"critical\": [";
        for (std::size_t i = 0; i < rec->critical.size(); ++i) {
            const TxnCritSeg &seg = rec->critical[i];
            os << (i ? ", " : "") << "{\"kind\": ";
            jsonEscape(os, seg.kind);
            os << ", \"span\": " << seg.span << ", \"start\": "
               << seg.start << ", \"end\": " << seg.end << "}";
        }
        os << "]}";
    }
    os << "\n  ]\n}\n";
}

bool
TxnTracer::writeJsonFile(const std::string &path) const
{
    std::ofstream out(path, std::ios::out | std::ios::trunc);
    if (!out.is_open())
        return false;
    writeJson(out);
    return out.good();
}

} // namespace limitless
