#include "obs/stats_json.hh"

#include <limits>

namespace limitless
{

void
phasesJson(std::ostream &os, const PhaseBreakdown &phases, bool hier)
{
    // Full round-trip precision: consumers check that the phases sum to
    // the total, which 6-significant-digit default formatting breaks.
    const auto prec =
        os.precision(std::numeric_limits<double>::max_digits10);
    os << "{\"count\":" << phases.completed
       << ",\"req_net\":" << phases.reqNet << ",\"home\":" << phases.home
       << ",\"trap\":" << phases.trap << ",\"inv\":" << phases.inv
       << ",\"reply_net\":" << phases.replyNet
       << ",\"total\":" << phases.total;
    if (hier) {
        os << ",\"chip_home\":" << phases.chipHome
           << ",\"global_home\":" << phases.globalHome
           << ",\"inter_chip_inv\":" << phases.interChipInv;
    }
    os << "}";
    os.precision(prec);
}

} // namespace limitless
