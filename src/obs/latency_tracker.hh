/**
 * @file
 * Remote-transaction latency tracker: decomposes the measured remote
 * access time T into the components of the paper's model T = Th + m*Ts.
 *
 * Every plain remote RREQ/WREQ miss is stamped at five points of its
 * life: injection at the requesting cache, arrival at the home memory
 * controller, software-trap emulation (the Ts charge), invalidation
 * fan-out, and reply receipt. On completion the end-to-end latency is
 * attributed to five phases that sum exactly to the total:
 *
 *   req_net    injection -> (last) arrival at the home controller,
 *              including service queueing and BUSY-retry round trips
 *   trap       cycles charged to software emulation (m*Ts component)
 *   inv        invalidation fan-out window (first INV -> last ACK)
 *   home       residual home-side occupancy
 *   reply_net  reply launch -> arrival back at the requester
 *
 * One tracker instance is owned by the FlightRecorder singleton;
 * harnesses reset() it per experiment and snapshot() it afterwards.
 */

#ifndef LIMITLESS_OBS_LATENCY_TRACKER_HH
#define LIMITLESS_OBS_LATENCY_TRACKER_HH

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "sim/types.hh"

namespace limitless
{

class EventQueue;

/** Mean per-phase latency over the completed remote transactions. */
struct PhaseBreakdown
{
    std::uint64_t completed = 0; ///< transactions measured
    double reqNet = 0.0;   ///< request network + queueing + retries
    double home = 0.0;     ///< residual home controller occupancy
    double trap = 0.0;     ///< software emulation charge (m*Ts)
    double inv = 0.0;      ///< invalidation fan-out window
    double replyNet = 0.0; ///< reply network
    double total = 0.0;    ///< end-to-end (== sum of the five phases)

    /** Two-level (--hier) sub-components: `home` folds chipHome +
     *  globalHome and `inv` folds interChipInv, so the five-phase sum
     *  invariant is unchanged; these break the hierarchical shares out.
     *  All zero in flat mode. */
    double chipHome = 0.0;     ///< per-chip home controller residual
    double globalHome = 0.0;   ///< inter-chip (global) home occupancy
    double interChipInv = 0.0; ///< one-INV-per-chip fan-out window

    double sum() const { return reqNet + home + trap + inv + replyNet; }
};

/** One completed transaction's phase decomposition, as attributed by
 *  LatencyTracker::onComplete. The five phases sum exactly to total
 *  (after the deficit fold), so any consumer — quantile reservoirs, the
 *  transaction tracer's critical paths — is consistent with the means
 *  in PhaseBreakdown by construction. */
struct PhaseSample
{
    NodeId requester = invalidNode;
    Addr line = 0;
    bool write = false;
    Tick inject = 0; ///< injection tick (sample covers [inject, end])
    Tick end = 0;    ///< completion tick
    double reqNet = 0.0;
    double home = 0.0;
    double trap = 0.0;
    double inv = 0.0;
    double replyNet = 0.0;
    double total = 0.0;
};

/** Stamps in-flight remote misses and accumulates per-phase sums. */
class LatencyTracker
{
  public:
    /** Drop all in-flight stamps and accumulated sums. */
    void reset();

    /** Requesting cache issued a remote RREQ/WREQ miss. */
    void onInject(Tick now, NodeId requester, Addr line, bool write);

    /** Home controller started servicing the request (re-stamped on
     *  BUSY-retry / deferral replay; earlier rounds land in req_net). */
    void onHomeArrival(Tick now, NodeId requester, Addr line);

    /** @name Two-level (--hier) hooks, called by the chip home only.
     *
     * The global home knows hierarchical requests by the chip home's
     * node id, not the original requester's, so onParentForward
     * registers an alias (chip node, line) -> (requester, line); while
     * it is live, the global home's ordinary stamps above resolve
     * through it into the parent-side fields of the requester's record.
     * The chip home drops the alias (onParentConsumed) before granting
     * locally, so its own reply stamp lands in the flat field even when
     * the requester happens to be the chip-home node itself. Flat runs
     * never register an alias and the hooks cost nothing. */
    /// @{
    /** Chip home started servicing a local request. */
    void onChipArrival(Tick now, NodeId requester, Addr line);
    /** Chip home forwarded the miss to the global home on behalf of
     *  @p requester (re-stamped on BUSY-retry toward the parent). */
    void onParentForward(Tick now, NodeId requester, Addr line,
                         NodeId chip_node);
    /** Chip home consumed the global home's reply; closes the alias. */
    void onParentConsumed(Tick now, NodeId chip_node, Addr line);
    /// @}

    /** Software-trap cycles charged while servicing this request. */
    void onTrap(NodeId requester, Addr line, Tick cycles);

    /** Home launched the invalidation fan-out for this request. */
    void onInvStart(Tick now, NodeId requester, Addr line);

    /** Last acknowledgment arrived; fan-out complete. */
    void onInvEnd(Tick now, NodeId requester, Addr line);

    /** Home launched the data reply toward the requester. */
    void onReplySent(Tick now, NodeId requester, Addr line);

    /** Requester's cache completed the access. */
    void onComplete(Tick now, NodeId requester, Addr line);

    PhaseBreakdown snapshot() const;

    /** One recorded hook invocation from a deferring tracker (parallel
     *  runs). Workers append stamps instead of mutating tracker state;
     *  after the kernel drains, the stamps are concatenated
     *  partition-major, stable-sorted by tick, and replay()ed into the
     *  main tracker. The result is bit-identical to the serial run:
     *  per-record stamps are keyed by (requester, line) and any two
     *  stamps of the same record are at least one network hop (>= 2
     *  ticks) apart when they originate on different partitions, so the
     *  (tick, partition, append-order) sort reproduces the serial
     *  interleaving exactly for every record; the cross-record sums are
     *  integer-valued doubles and accumulate in the same sorted order. */
    struct DeferredStamp
    {
        enum class Kind : std::uint8_t
        {
            inject,
            homeArrival,
            chipArrival,
            parentForward,
            parentConsumed,
            trap,
            invStart,
            invEnd,
            replySent,
            complete,
        };
        Tick now = 0;              ///< stamp tick (clock at call time)
        Tick cycles = 0;           ///< trap only: cycles charged
        NodeId node = invalidNode; ///< requester (or chip node)
        NodeId chipNode = invalidNode; ///< parentForward only
        Addr line = 0;
        Kind kind = Kind::inject;
        bool write = false; ///< inject only
    };

    /** Switch the tracker into record-only mode: every hook appends a
     *  stamp to @p buf and returns without touching tracker state.
     *  @p clock supplies the tick for onTrap, the one hook without a
     *  `now` parameter; pass the calling partition's queue. Pass
     *  (nullptr, nullptr) to return to direct mode. */
    void deferTo(std::vector<DeferredStamp> *buf, const EventQueue *clock)
    {
        _deferBuf = buf;
        _deferClock = clock;
    }

    /** Apply one recorded stamp as if the hook had been called live.
     *  Only meaningful in direct mode (deferTo(nullptr, nullptr)). */
    void replay(const DeferredStamp &s);

    /** Per-sample observer, invoked at the end of every onComplete with
     *  the folded phase attribution. Survives reset(); pass nullptr to
     *  detach. Used by the transaction tracer to finalize span trees and
     *  feed quantile reservoirs with the exact same numbers the mean
     *  breakdown accumulates. */
    void setSampleSink(std::function<void(const PhaseSample &)> sink)
    {
        _sink = std::move(sink);
    }

    /** Transactions injected but never completed. A quiescent machine
     *  must report zero here: a non-zero count at end of run means a
     *  remote miss was silently dropped (the pre-fix behaviour was to
     *  discard these stamps without a trace). */
    std::uint64_t inFlight() const { return _open.size(); }
    std::uint64_t completed() const { return _completed; }

  private:
    struct Open
    {
        Tick inject = 0;
        Tick homeArrival = 0;
        Tick invStart = 0;
        Tick invEnd = 0;
        Tick replySent = 0;
        Tick trapCycles = 0;
        bool write = false;
        /** Two-level stamps (all zero for flat transactions). The
         *  p-prefixed fields are the global home's stamps, routed here
         *  through the alias registered by onParentForward. */
        Tick chipArrival = 0;
        Tick parentForward = 0;
        Tick pArrival = 0;
        Tick pInvStart = 0;
        Tick pInvEnd = 0;
        Tick pReply = 0;
        Tick pTrapCycles = 0;
        Tick pReplyNet = 0; ///< accumulated parent->chip reply legs
    };

    static std::uint64_t
    key(NodeId requester, Addr line)
    {
        return (static_cast<std::uint64_t>(requester) << 48) ^ line;
    }

    Open *find(NodeId requester, Addr line);
    /** The record a parent-side stamp belongs to: the live alias for
     *  (node, line) if one exists, else the direct record. Sets
     *  @p parent_side when the alias resolved. */
    Open *resolve(NodeId node, Addr line, bool &parent_side);

    std::unordered_map<std::uint64_t, Open> _open;
    /** (chip node, line) key -> open-record key (see onParentForward). */
    std::unordered_map<std::uint64_t, std::uint64_t> _aliases;
    std::function<void(const PhaseSample &)> _sink;
    std::vector<DeferredStamp> *_deferBuf = nullptr;
    const EventQueue *_deferClock = nullptr;

    std::uint64_t _completed = 0;
    double _sumReqNet = 0.0;
    double _sumHome = 0.0;
    double _sumTrap = 0.0;
    double _sumInv = 0.0;
    double _sumReplyNet = 0.0;
    double _sumTotal = 0.0;
    double _sumChipHome = 0.0;
    double _sumGlobalHome = 0.0;
    double _sumInterChipInv = 0.0;
};

} // namespace limitless

#endif // LIMITLESS_OBS_LATENCY_TRACKER_HH
