#include "obs/telemetry.hh"

#include <sstream>

#include "obs/json.hh"
#include "sim/log.hh"

namespace limitless
{

std::string
Log2Histogram::label(unsigned i) const
{
    std::ostringstream os;
    if (i == overflowBucket())
        os << lowerBound(i) << "+";
    else if (lowerBound(i) == upperBound(i))
        os << lowerBound(i);
    else
        os << lowerBound(i) << "-" << upperBound(i);
    return os.str();
}

void
Log2Histogram::merge(const Log2Histogram &other)
{
    if (other._buckets.size() != _buckets.size())
        fatal("Log2Histogram::merge: bucket count mismatch (%zu vs %zu)",
              _buckets.size(), other._buckets.size());
    for (std::size_t i = 0; i < _buckets.size(); ++i)
        _buckets[i] += other._buckets[i];
    _count += other._count;
}

void
Telemetry::addGauge(std::string name, Probe probe)
{
    _columns.push_back(
        Column{std::move(name), Kind::gauge, std::move(probe), {}, 0, 0, {}});
}

void
Telemetry::addRate(std::string name, Probe probe)
{
    _columns.push_back(
        Column{std::move(name), Kind::rate, std::move(probe), {}, 0, 0, {}});
}

void
Telemetry::addRatio(std::string name, Probe num, Probe den)
{
    _columns.push_back(Column{std::move(name), Kind::ratio, std::move(num),
                              std::move(den), 0, 0, {}});
}

Log2Histogram *
Telemetry::addHistogram(std::string name, std::string desc, unsigned buckets)
{
    _histograms.push_back(NamedHistogram{
        std::move(name), std::move(desc),
        std::make_unique<Log2Histogram>(buckets)});
    return _histograms.back().hist.get();
}

void
Telemetry::addSummary(std::string name,
                      std::function<void(std::ostream &)> emit)
{
    _summaries.push_back(Summary{std::move(name), std::move(emit)});
}

void
Telemetry::setMeta(std::string key, std::string value)
{
    _meta.emplace_back(std::move(key), std::move(value));
}

void
Telemetry::prime()
{
    for (Column &c : _columns) {
        if (c.kind == Kind::gauge)
            continue;
        c.last = c.probe();
        if (c.kind == Kind::ratio)
            c.lastDen = c.denom();
    }
    _lastSampleTick = _eq.now();
    _primed = true;
}

void
Telemetry::sampleWindow()
{
    for (Column &c : _columns) {
        switch (c.kind) {
          case Kind::gauge:
            c.values.push_back(c.probe());
            break;
          case Kind::rate: {
            const double now = c.probe();
            c.values.push_back(now - c.last);
            c.last = now;
            break;
          }
          case Kind::ratio: {
            const double num = c.probe();
            const double den = c.denom();
            const double dnum = num - c.last;
            const double dden = den - c.lastDen;
            c.values.push_back(dden != 0.0 ? dnum / dden : 0.0);
            c.last = num;
            c.lastDen = den;
            break;
          }
        }
    }
    _ticks.push_back(_eq.now());
    _lastSampleTick = _eq.now();
}

void
Telemetry::scheduleNext()
{
    _eq.schedule(_eq.now() + _interval, [this]() {
        if (!_running)
            return;
        sampleWindow();
        // Stop check runs *after* sampling (Sampler's idiom) so the
        // run's final full interval is recorded before the queue drains.
        if (_done && _done()) {
            _running = false;
            return;
        }
        scheduleNext();
    }, EventPriority::stats);
}

void
Telemetry::start(std::function<bool()> done)
{
    if (_interval == 0)
        fatal("telemetry: interval must be > 0");
    _done = std::move(done);
    _running = true;
    prime();
    scheduleNext();
}

void
Telemetry::finish()
{
    _running = false;
    if (!_primed)
        return;
    // Drain-tail window: activity after the last interval tick (or a run
    // shorter than one interval) still lands in a final partial window,
    // so rate columns sum exactly to run totals.
    if (_eq.now() > _lastSampleTick || _ticks.empty())
        sampleWindow();
}

const std::vector<double> &
Telemetry::values(const std::string &name) const
{
    for (const Column &c : _columns)
        if (c.name == name)
            return c.values;
    fatal("telemetry: no column named '%s'", name.c_str());
}

const Log2Histogram *
Telemetry::histogram(const std::string &name) const
{
    for (const NamedHistogram &h : _histograms)
        if (h.name == name)
            return h.hist.get();
    return nullptr;
}

void
Telemetry::writeCsv(std::ostream &os) const
{
    os << "# schema: " << csvSchema() << "\n";
    os << "tick";
    for (const Column &c : _columns)
        os << "," << c.name;
    os << "\n";
    for (std::size_t row = 0; row < _ticks.size(); ++row) {
        os << _ticks[row];
        for (const Column &c : _columns)
            os << "," << c.values[row];
        os << "\n";
    }
}

void
Telemetry::writeJson(std::ostream &os) const
{
    os << "{\n  \"schema\": \"" << jsonSchema() << "\",\n"
       << "  \"schema_version\": " << schemaVersion << ",\n"
       << "  \"interval\": " << _interval << ",\n"
       << "  \"windows\": " << _ticks.size() << ",\n";
    os << "  \"meta\": {";
    for (std::size_t i = 0; i < _meta.size(); ++i) {
        os << (i ? ", " : "");
        jsonEscape(os, _meta[i].first);
        os << ": ";
        jsonEscape(os, _meta[i].second);
    }
    os << "},\n";
    os << "  \"columns\": [";
    for (std::size_t i = 0; i < _columns.size(); ++i) {
        os << (i ? ", " : "");
        jsonEscape(os, _columns[i].name);
    }
    os << "],\n";
    os << "  \"histograms\": {";
    for (std::size_t i = 0; i < _histograms.size(); ++i) {
        const NamedHistogram &h = _histograms[i];
        os << (i ? ",\n    " : "\n    ");
        jsonEscape(os, h.name);
        os << ": {\"desc\": ";
        jsonEscape(os, h.desc);
        os << ", \"count\": " << h.hist->count() << ", \"labels\": [";
        for (unsigned b = 0; b < h.hist->numBuckets(); ++b) {
            os << (b ? ", " : "");
            jsonEscape(os, h.hist->label(b));
        }
        os << "], \"buckets\": [";
        for (unsigned b = 0; b < h.hist->numBuckets(); ++b)
            os << (b ? ", " : "") << h.hist->bucket(b);
        os << "]}";
    }
    os << (_histograms.empty() ? "},\n" : "\n  },\n");
    os << "  \"summaries\": {";
    for (std::size_t i = 0; i < _summaries.size(); ++i) {
        os << (i ? ",\n    " : "\n    ");
        jsonEscape(os, _summaries[i].name);
        os << ": ";
        _summaries[i].emit(os);
    }
    os << (_summaries.empty() ? "}\n" : "\n  }\n");
    os << "}\n";
}

std::string
telemetryJsonPathFor(const std::string &csvPath)
{
    const std::string suffix = ".csv";
    if (csvPath.size() > suffix.size() &&
        csvPath.compare(csvPath.size() - suffix.size(), suffix.size(),
                        suffix) == 0) {
        return csvPath.substr(0, csvPath.size() - suffix.size()) + ".json";
    }
    return csvPath + ".json";
}

} // namespace limitless
