/**
 * @file
 * Time-series telemetry: a pull-based metrics subsystem sampled on a
 * configurable simulated-cycle interval.
 *
 * The flight recorder (PR 1) answers "what happened to this transaction";
 * end-of-run stats answer "how much in total". Telemetry adds the time
 * dimension the paper's graceful-degradation argument rests on: how the
 * overflow fraction m(t), trap backlog, and worker sets *evolve* during a
 * run (Section 4 proposes exactly this kind of worker-set profiling as a
 * LimitLESS software extension on the Trap-Always meta-state).
 *
 * Design constraints:
 *  - Pull-based gauges: nothing is computed between samples, so an idle
 *    metric costs zero on the simulation hot path. Producers only expose
 *    cheap cumulative counters or O(nodes) probes evaluated once per
 *    window.
 *  - Event-driven: one EventPriority::stats event per interval (the same
 *    idiom as stats::Sampler), so sampling never perturbs protocol event
 *    order or simulated timing.
 *  - ParallelRunner-safe: a Telemetry instance belongs to one Machine and
 *    touches only that machine's EventQueue; per-run output files are
 *    derived from per-run labels by the harness.
 *
 * Output is a versioned CSV (one row per window) plus a JSON sidecar
 * carrying histograms, summaries (e.g. mesh hotspot top-k), and run
 * metadata. See docs/OBSERVABILITY.md for the file formats and the
 * schema_version bump policy.
 */

#ifndef LIMITLESS_OBS_TELEMETRY_HH
#define LIMITLESS_OBS_TELEMETRY_HH

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "sim/event_queue.hh"

namespace limitless
{

/**
 * Standalone power-of-two bucketed histogram for telemetry sinks.
 *
 * Bucket semantics match stats::Histogram so the two are comparable:
 * bucket 0 counts values in [0, 2), bucket i >= 1 counts [2^i, 2^(i+1)),
 * and the last bucket absorbs everything at or above its lower bound
 * (the overflow bucket). Unlike stats::Histogram it exposes the bucket
 * geometry (for labels and tests) and supports merging, so per-job
 * histograms from ParallelRunner fan-outs can be folded together.
 */
class Log2Histogram
{
  public:
    explicit Log2Histogram(unsigned buckets = 16) : _buckets(buckets, 0) {}

    void
    sample(std::uint64_t v)
    {
        ++_buckets[bucketFor(v, _buckets.size())];
        ++_count;
    }

    /** Bucket index value @p v falls into for an @p n -bucket histogram. */
    static unsigned
    bucketFor(std::uint64_t v, std::size_t n)
    {
        unsigned b = 0;
        while (v > 1 && b + 1 < n) {
            v >>= 1;
            ++b;
        }
        return b;
    }

    /** Smallest value counted by bucket @p i (0 for bucket 0). */
    static std::uint64_t
    lowerBound(unsigned i)
    {
        return i == 0 ? 0 : std::uint64_t{1} << i;
    }

    /**
     * Largest value counted by bucket @p i, were it not the overflow
     * bucket; the final bucket actually extends to 2^64-1.
     */
    static std::uint64_t
    upperBound(unsigned i)
    {
        return (std::uint64_t{1} << (i + 1)) - 1;
    }

    /** Human-readable bucket range, e.g. "0-1", "4-7", "256+" (last). */
    std::string label(unsigned i) const;

    /** Fold another histogram's counts into this one (same bucket count
     *  required; used to merge per-job results from ParallelRunner). */
    void merge(const Log2Histogram &other);

    std::uint64_t count() const { return _count; }
    std::uint64_t bucket(unsigned i) const { return _buckets.at(i); }
    unsigned numBuckets() const { return _buckets.size(); }

    /** Index of the overflow bucket. */
    unsigned overflowBucket() const { return _buckets.size() - 1; }

    void
    reset()
    {
        std::fill(_buckets.begin(), _buckets.end(), 0);
        _count = 0;
    }

  private:
    std::vector<std::uint64_t> _buckets;
    std::uint64_t _count = 0;
};

/**
 * Interval-sampled metrics registry for one Machine.
 *
 * Three column kinds, all pull-based:
 *  - gauge: the probe's value at the sample instant (queue depth,
 *    pointer-array occupancy);
 *  - rate:  per-window delta of a cumulative probe (misses this window);
 *  - ratio: delta(numerator) / delta(denominator) of two cumulative
 *    probes — the windowed overflow fraction m is ratio(traps, requests),
 *    and windowed ratios weighted by their denominator deltas recover the
 *    run-level value exactly (the cross-check test relies on this).
 *
 * Histograms registered here are owned by the Telemetry object and fed by
 * producer-side sinks (a raw pointer handed to the instrumented
 * component); they accumulate over the whole run, not per window.
 */
class Telemetry
{
  public:
    /** Bumped when the CSV column contract or JSON layout changes; see
     *  docs/OBSERVABILITY.md for the bump policy. */
    static constexpr int schemaVersion = 1;
    static const char *csvSchema() { return "limitless-telemetry-csv-v1"; }
    static const char *jsonSchema() { return "limitless-telemetry-v1"; }

    using Probe = std::function<double()>;

    Telemetry(EventQueue &eq, Tick interval)
        : _eq(eq), _interval(interval)
    {}

    Telemetry(const Telemetry &) = delete;
    Telemetry &operator=(const Telemetry &) = delete;

    /** Absolute value read at each sample instant. */
    void addGauge(std::string name, Probe probe);

    /** Per-window delta of a cumulative probe. */
    void addRate(std::string name, Probe probe);

    /** Per-window delta(num)/delta(den); 0 when the denominator did not
     *  move. */
    void addRatio(std::string name, Probe num, Probe den);

    /** Register an owned histogram; producers sample via the returned
     *  pointer (stable for the Telemetry object's lifetime). */
    Log2Histogram *addHistogram(std::string name, std::string desc,
                                unsigned buckets = 16);

    /** Attach a free-form JSON value emitted under "summaries".<name> in
     *  the sidecar (evaluated at write time — e.g. hotspot top-k). */
    void addSummary(std::string name,
                    std::function<void(std::ostream &)> emit);

    /** Key/value run metadata for the JSON sidecar. */
    void setMeta(std::string key, std::string value);

    /**
     * Begin interval sampling. The @p done predicate is checked *after*
     * each sample (Sampler's idiom) so the final full window is recorded
     * and the event queue is not kept alive past the run.
     */
    void start(std::function<bool()> done);

    /**
     * Record the final partial window (post-done drain activity included)
     * so window deltas sum exactly to run totals. Call once after the
     * event loop finishes; a run shorter than one interval yields its
     * single window here.
     */
    void finish();

    Tick interval() const { return _interval; }
    std::size_t windows() const { return _ticks.size(); }
    std::size_t numColumns() const { return _columns.size(); }
    const std::string &columnName(std::size_t i) const
    {
        return _columns.at(i).name;
    }

    /** Recorded per-window values for one column (by exact name). */
    const std::vector<double> &values(const std::string &name) const;

    /** Registered histogram by name; null when absent. */
    const Log2Histogram *histogram(const std::string &name) const;
    const std::vector<Tick> &ticks() const { return _ticks; }

    /** CSV time-series: "# schema:" line, header row, one row/window. */
    void writeCsv(std::ostream &os) const;

    /** JSON sidecar: schema, interval, columns, histograms, summaries. */
    void writeJson(std::ostream &os) const;

  private:
    enum class Kind { gauge, rate, ratio };

    struct Column
    {
        std::string name;
        Kind kind;
        Probe probe;
        Probe denom;     // ratio only
        double last = 0.0;
        double lastDen = 0.0;
        std::vector<double> values;
    };

    struct NamedHistogram
    {
        std::string name;
        std::string desc;
        std::unique_ptr<Log2Histogram> hist;
    };

    struct Summary
    {
        std::string name;
        std::function<void(std::ostream &)> emit;
    };

    void prime();
    void sampleWindow();
    void scheduleNext();

    EventQueue &_eq;
    Tick _interval;
    bool _running = false;
    bool _primed = false;
    Tick _lastSampleTick = 0;
    std::function<bool()> _done;
    std::vector<Column> _columns;
    std::vector<Tick> _ticks;
    std::vector<NamedHistogram> _histograms;
    std::vector<Summary> _summaries;
    std::vector<std::pair<std::string, std::string>> _meta;
};

/** "foo.csv" -> "foo.json"; no ".csv" suffix -> append ".json". */
std::string telemetryJsonPathFor(const std::string &csvPath);

} // namespace limitless

#endif // LIMITLESS_OBS_TELEMETRY_HH
