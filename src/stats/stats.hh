/**
 * @file
 * Statistics package: counters, accumulators, and histograms grouped into
 * named StatSets, in the spirit of gem5's stats framework but deliberately
 * small.
 *
 * Components own a StatSet and create named stats once at construction;
 * the hot path (increment / sample) is a plain integer operation. The
 * machine layer aggregates per-node StatSets by stat name for reporting.
 */

#ifndef LIMITLESS_STATS_STATS_HH
#define LIMITLESS_STATS_STATS_HH

#include <algorithm>
#include <cstdint>
#include <limits>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

namespace limitless
{

/** Base class for a named statistic. */
class Stat
{
  public:
    Stat(std::string name, std::string desc)
        : _name(std::move(name)), _desc(std::move(desc))
    {}

    virtual ~Stat() = default;

    const std::string &name() const { return _name; }
    const std::string &desc() const { return _desc; }

    /** One-line textual dump (without the name column). */
    virtual void print(std::ostream &os) const = 0;

    /** Emit the stat's value(s) as one JSON value. */
    virtual void json(std::ostream &os) const = 0;

    /** Reset to the just-constructed state. */
    virtual void reset() = 0;

  private:
    std::string _name;
    std::string _desc;
};

/** Monotonic event counter. */
class Counter : public Stat
{
  public:
    using Stat::Stat;

    Counter &operator++() { ++_value; return *this; }
    Counter &operator+=(std::uint64_t n) { _value += n; return *this; }

    std::uint64_t value() const { return _value; }

    void print(std::ostream &os) const override { os << _value; }
    void json(std::ostream &os) const override { os << _value; }
    void reset() override { _value = 0; }

  private:
    std::uint64_t _value = 0;
};

/** Running min / max / mean / stddev / count over samples (latencies). */
class Accumulator : public Stat
{
  public:
    using Stat::Stat;

    void
    sample(double v)
    {
        ++_count;
        _sum += v;
        _min = std::min(_min, v);
        _max = std::max(_max, v);
        // Welford's online update keeps the variance numerically stable
        // regardless of the magnitude of the samples.
        const double delta = v - _mean;
        _mean += delta / static_cast<double>(_count);
        _m2 += delta * (v - _mean);
    }

    std::uint64_t count() const { return _count; }
    double sum() const { return _sum; }
    double mean() const { return _count ? _sum / _count : 0.0; }
    double minimum() const { return _count ? _min : 0.0; }
    double maximum() const { return _count ? _max : 0.0; }
    /** Population variance over the samples seen so far. */
    double variance() const { return _count ? _m2 / _count : 0.0; }
    double stddev() const;
    /** Sum of squared deviations (for Chan-style parallel merges). */
    double m2() const { return _m2; }

    /** Fold another accumulator's samples into this one (Chan et al.'s
     *  parallel-variance merge), for cross-node aggregation. */
    void merge(const Accumulator &other);

    void print(std::ostream &os) const override;
    void json(std::ostream &os) const override;

    void
    reset() override
    {
        _count = 0;
        _sum = 0.0;
        _min = std::numeric_limits<double>::infinity();
        _max = -std::numeric_limits<double>::infinity();
        _mean = 0.0;
        _m2 = 0.0;
    }

  private:
    std::uint64_t _count = 0;
    double _sum = 0.0;
    double _min = std::numeric_limits<double>::infinity();
    double _max = -std::numeric_limits<double>::infinity();
    double _mean = 0.0;
    double _m2 = 0.0;
};

/**
 * Power-of-two bucketed histogram: bucket i counts samples in
 * [2^(i-1), 2^i), with bucket 0 counting zeros and ones.
 */
class Histogram : public Stat
{
  public:
    Histogram(std::string name, std::string desc, unsigned buckets = 24)
        : Stat(std::move(name), std::move(desc)), _buckets(buckets, 0)
    {}

    void
    sample(std::uint64_t v)
    {
        unsigned b = 0;
        while (v > 1 && b + 1 < _buckets.size()) {
            v >>= 1;
            ++b;
        }
        ++_buckets[b];
        ++_count;
    }

    std::uint64_t count() const { return _count; }
    std::uint64_t bucket(unsigned i) const { return _buckets.at(i); }
    unsigned numBuckets() const { return _buckets.size(); }

    void print(std::ostream &os) const override;
    void json(std::ostream &os) const override;

    void
    reset() override
    {
        std::fill(_buckets.begin(), _buckets.end(), 0);
        _count = 0;
    }

  private:
    std::vector<std::uint64_t> _buckets;
    std::uint64_t _count = 0;
};

/** Exact distribution over a small integer domain (e.g. worker-set size). */
class Distribution : public Stat
{
  public:
    Distribution(std::string name, std::string desc, std::size_t max_value)
        : Stat(std::move(name), std::move(desc)), _counts(max_value + 1, 0)
    {}

    void
    sample(std::size_t v)
    {
        ++_counts[std::min(v, _counts.size() - 1)];
        ++_count;
    }

    std::uint64_t count() const { return _count; }
    std::uint64_t at(std::size_t v) const { return _counts.at(v); }
    std::size_t domain() const { return _counts.size(); }

    void print(std::ostream &os) const override;
    void json(std::ostream &os) const override;

    void
    reset() override
    {
        std::fill(_counts.begin(), _counts.end(), 0);
        _count = 0;
    }

  private:
    std::vector<std::uint64_t> _counts;
    std::uint64_t _count = 0;
};

/**
 * An owning collection of named stats belonging to one component.
 */
class StatSet
{
  public:
    explicit StatSet(std::string prefix = "") : _prefix(std::move(prefix)) {}

    StatSet(const StatSet &) = delete;
    StatSet &operator=(const StatSet &) = delete;

    Counter &counter(const std::string &name, const std::string &desc);
    Accumulator &accumulator(const std::string &name,
                             const std::string &desc);
    Histogram &histogram(const std::string &name, const std::string &desc,
                         unsigned buckets = 24);
    Distribution &distribution(const std::string &name,
                               const std::string &desc,
                               std::size_t max_value);

    /** Find a stat by (unprefixed) name; nullptr if absent. */
    const Stat *find(const std::string &name) const;
    Stat *find(const std::string &name);

    const std::string &prefix() const { return _prefix; }

    const std::vector<std::unique_ptr<Stat>> &all() const { return _stats; }

    /** Dump every stat, one "prefix.name value # desc" line each. */
    void dump(std::ostream &os) const;

    /** Emit the whole set as one JSON object keyed by stat name. */
    void json(std::ostream &os) const;

    void resetAll();

  private:
    template <typename T, typename... Args>
    T &add(const std::string &name, Args &&...args);

    std::string _prefix;
    std::vector<std::unique_ptr<Stat>> _stats;
};

} // namespace limitless

#endif // LIMITLESS_STATS_STATS_HH
