/**
 * @file
 * Bounded sampling reservoir for streaming quantiles.
 *
 * Keeps up to `capacity` samples; once full, incoming samples replace
 * stored ones with probability capacity/seen (Vitter's Algorithm R), so
 * the reservoir is always a uniform sample of the stream. The default
 * capacity (1 << 17) exceeds the remote-miss count of every ≤64-node
 * figure run in this repo, so quantiles are *exact* there; larger
 * streams degrade gracefully to sampled quantiles.
 *
 * The replacement RNG is a private SplitMix64 seeded from a constant,
 * not the machine RNG: quantile sampling must never perturb simulated
 * behaviour, and a fixed seed keeps exports reproducible run-to-run.
 */

#ifndef LIMITLESS_STATS_RESERVOIR_HH
#define LIMITLESS_STATS_RESERVOIR_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace limitless
{

class QuantileReservoir
{
  public:
    static constexpr std::size_t defaultCapacity = std::size_t(1) << 17;

    explicit QuantileReservoir(std::size_t capacity = defaultCapacity)
        : _capacity(capacity ? capacity : 1)
    {
    }

    void
    add(double value)
    {
        ++_seen;
        if (_samples.size() < _capacity) {
            _samples.push_back(value);
            return;
        }
        const std::uint64_t slot = nextRandom() % _seen;
        if (slot < _capacity)
            _samples[static_cast<std::size_t>(slot)] = value;
    }

    /** Fold another reservoir in (ParallelRunner result merge). When the
     *  combined streams fit, the merge stays exact; otherwise the donor's
     *  samples re-enter through Algorithm R weighted by its stream size. */
    void
    merge(const QuantileReservoir &other)
    {
        if (other._seen == 0)
            return;
        if (_samples.size() + other._samples.size() <= _capacity &&
            _seen == _samples.size() &&
            other._seen == other._samples.size()) {
            _samples.insert(_samples.end(), other._samples.begin(),
                            other._samples.end());
            _seen += other._seen;
            return;
        }
        // Sampled path: replay the donor's kept samples, each standing
        // for seen/kept stream elements.
        const double weight = static_cast<double>(other._seen) /
                              static_cast<double>(other._samples.size());
        for (double v : other._samples) {
            const auto reps =
                static_cast<std::uint64_t>(weight < 1.0 ? 1.0 : weight);
            for (std::uint64_t i = 0; i < reps; ++i)
                add(v);
        }
    }

    /** Quantile in [0, 1] over the kept samples (exact when the stream
     *  fit in the reservoir). Returns 0 for an empty reservoir. */
    double
    quantile(double q) const
    {
        if (_samples.empty())
            return 0.0;
        std::vector<double> sorted(_samples);
        std::size_t rank = static_cast<std::size_t>(
            q * static_cast<double>(sorted.size() - 1) + 0.5);
        if (rank >= sorted.size())
            rank = sorted.size() - 1;
        std::nth_element(sorted.begin(), sorted.begin() + rank,
                         sorted.end());
        return sorted[rank];
    }

    double
    mean() const
    {
        if (_samples.empty())
            return 0.0;
        double sum = 0.0;
        for (double v : _samples)
            sum += v;
        return sum / static_cast<double>(_samples.size());
    }

    std::uint64_t count() const { return _seen; }
    std::size_t kept() const { return _samples.size(); }
    bool exact() const { return _seen == _samples.size(); }

    void
    reset()
    {
        _samples.clear();
        _seen = 0;
        _rng = seed0;
    }

  private:
    static constexpr std::uint64_t seed0 = 0x9e3779b97f4a7c15ull;

    std::uint64_t
    nextRandom()
    {
        // SplitMix64: tiny, fast, and good enough for reservoir slots.
        std::uint64_t z = (_rng += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    std::size_t _capacity;
    std::vector<double> _samples;
    std::uint64_t _seen = 0;
    std::uint64_t _rng = seed0;
};

} // namespace limitless

#endif // LIMITLESS_STATS_RESERVOIR_HH
