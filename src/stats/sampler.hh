/**
 * @file
 * Periodic time-series sampler: records counter deltas (activity rates)
 * per fixed interval during a run, and renders ASCII activity profiles.
 * Used to visualize phase behaviour (barrier waves, hot-spot stalls)
 * that end-of-run aggregates hide.
 */

#ifndef LIMITLESS_STATS_SAMPLER_HH
#define LIMITLESS_STATS_SAMPLER_HH

#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "sim/event_queue.hh"
#include "stats/stats.hh"

namespace limitless
{

/** Event-driven interval sampler. */
class Sampler
{
  public:
    /** Arbitrary probe: returns the metric's current cumulative value. */
    using Probe = std::function<double()>;

    Sampler(EventQueue &eq, Tick interval)
        : _eq(eq), _interval(interval)
    {}

    /** Sample the per-interval delta of a cumulative probe. */
    void
    addSeries(std::string name, Probe probe)
    {
        _series.push_back(Series{std::move(name), std::move(probe),
                                 0.0, {}});
    }

    /** Convenience: per-interval delta of a Counter. */
    void
    addCounter(std::string name, const Counter &counter)
    {
        addSeries(std::move(name), [&counter]() {
            return static_cast<double>(counter.value());
        });
    }

    /** Begin sampling (self-rescheduling until stop(), the stop
     *  predicate fires, or the event queue ends). */
    void start();
    void stop() { _running = false; }

    /**
     * Without a stop condition the sampler would keep the event queue
     * alive forever; supply a predicate (e.g. "all threads done") that
     * ends sampling from inside the run.
     */
    void setStopPredicate(std::function<bool()> done)
    {
        _done = std::move(done);
    }

    std::size_t samples() const
    {
        return _series.empty() ? 0 : _series.front().values.size();
    }

    const std::vector<double> &
    values(const std::string &name) const;

    Tick interval() const { return _interval; }

    /**
     * ASCII profile: one row per series, one character per sample,
     * intensity-scaled against the series' own maximum.
     */
    void printProfile(std::ostream &os, unsigned max_columns = 72) const;

  private:
    struct Series
    {
        std::string name;
        Probe probe;
        double last;
        std::vector<double> values;
    };

    void tick();

    EventQueue &_eq;
    Tick _interval;
    std::vector<Series> _series;
    std::function<bool()> _done;
    bool _running = false;
};

} // namespace limitless

#endif // LIMITLESS_STATS_SAMPLER_HH
