#include "stats/stats.hh"

#include <cmath>
#include <iomanip>

#include "sim/log.hh"

namespace limitless
{

double
Accumulator::stddev() const
{
    return std::sqrt(variance());
}

void
Accumulator::merge(const Accumulator &other)
{
    if (other._count == 0)
        return;
    if (_count == 0) {
        _count = other._count;
        _sum = other._sum;
        _min = other._min;
        _max = other._max;
        _mean = other._mean;
        _m2 = other._m2;
        return;
    }
    // Chan et al.'s pairwise update of the sum of squared deviations.
    const double na = static_cast<double>(_count);
    const double nb = static_cast<double>(other._count);
    const double delta = other._mean - _mean;
    const double n = na + nb;
    _mean += delta * nb / n;
    _m2 += other._m2 + delta * delta * na * nb / n;
    _count += other._count;
    _sum += other._sum;
    _min = std::min(_min, other._min);
    _max = std::max(_max, other._max);
}

void
Accumulator::print(std::ostream &os) const
{
    os << "count=" << _count << " mean=" << mean()
       << " stddev=" << stddev() << " min=" << minimum()
       << " max=" << maximum();
}

void
Accumulator::json(std::ostream &os) const
{
    const auto prec =
        os.precision(std::numeric_limits<double>::max_digits10);
    os << "{\"count\":" << _count << ",\"mean\":" << mean()
       << ",\"stddev\":" << stddev() << ",\"min\":" << minimum()
       << ",\"max\":" << maximum() << ",\"sum\":" << sum() << "}";
    os.precision(prec);
}

void
Histogram::print(std::ostream &os) const
{
    os << "count=" << _count << " [";
    bool first = true;
    for (std::size_t i = 0; i < _buckets.size(); ++i) {
        if (_buckets[i] == 0)
            continue;
        if (!first)
            os << ", ";
        first = false;
        os << "<2^" << i << ":" << _buckets[i];
    }
    os << "]";
}

void
Histogram::json(std::ostream &os) const
{
    os << "{\"count\":" << _count << ",\"buckets\":{";
    bool first = true;
    for (std::size_t i = 0; i < _buckets.size(); ++i) {
        if (_buckets[i] == 0)
            continue;
        if (!first)
            os << ",";
        first = false;
        os << "\"" << i << "\":" << _buckets[i];
    }
    os << "}}";
}

void
Distribution::print(std::ostream &os) const
{
    os << "count=" << _count << " [";
    bool first = true;
    for (std::size_t i = 0; i < _counts.size(); ++i) {
        if (_counts[i] == 0)
            continue;
        if (!first)
            os << ", ";
        first = false;
        os << i << ":" << _counts[i];
    }
    os << "]";
}

void
Distribution::json(std::ostream &os) const
{
    os << "{\"count\":" << _count << ",\"values\":{";
    bool first = true;
    for (std::size_t i = 0; i < _counts.size(); ++i) {
        if (_counts[i] == 0)
            continue;
        if (!first)
            os << ",";
        first = false;
        os << "\"" << i << "\":" << _counts[i];
    }
    os << "}}";
}

template <typename T, typename... Args>
T &
StatSet::add(const std::string &name, Args &&...args)
{
    if (find(name) != nullptr)
        panic("duplicate stat name '%s' in set '%s'", name.c_str(),
              _prefix.c_str());
    auto stat = std::make_unique<T>(name, std::forward<Args>(args)...);
    T &ref = *stat;
    _stats.push_back(std::move(stat));
    return ref;
}

Counter &
StatSet::counter(const std::string &name, const std::string &desc)
{
    return add<Counter>(name, desc);
}

Accumulator &
StatSet::accumulator(const std::string &name, const std::string &desc)
{
    return add<Accumulator>(name, desc);
}

Histogram &
StatSet::histogram(const std::string &name, const std::string &desc,
                   unsigned buckets)
{
    return add<Histogram>(name, desc, buckets);
}

Distribution &
StatSet::distribution(const std::string &name, const std::string &desc,
                      std::size_t max_value)
{
    return add<Distribution>(name, desc, max_value);
}

const Stat *
StatSet::find(const std::string &name) const
{
    for (const auto &s : _stats)
        if (s->name() == name)
            return s.get();
    return nullptr;
}

Stat *
StatSet::find(const std::string &name)
{
    return const_cast<Stat *>(
        static_cast<const StatSet *>(this)->find(name));
}

void
StatSet::dump(std::ostream &os) const
{
    for (const auto &s : _stats) {
        os << std::left << std::setw(44)
           << (_prefix.empty() ? s->name() : _prefix + "." + s->name())
           << " ";
        s->print(os);
        os << "   # " << s->desc() << "\n";
    }
}

void
StatSet::json(std::ostream &os) const
{
    os << "{";
    bool first = true;
    for (const auto &s : _stats) {
        if (!first)
            os << ",";
        first = false;
        os << "\"" << s->name() << "\":";
        s->json(os);
    }
    os << "}";
}

void
StatSet::resetAll()
{
    for (auto &s : _stats)
        s->reset();
}

} // namespace limitless
