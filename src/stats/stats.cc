#include "stats/stats.hh"

#include <iomanip>

#include "sim/log.hh"

namespace limitless
{

void
Accumulator::print(std::ostream &os) const
{
    os << "count=" << _count << " mean=" << mean() << " min=" << minimum()
       << " max=" << maximum();
}

void
Histogram::print(std::ostream &os) const
{
    os << "count=" << _count << " [";
    bool first = true;
    for (std::size_t i = 0; i < _buckets.size(); ++i) {
        if (_buckets[i] == 0)
            continue;
        if (!first)
            os << ", ";
        first = false;
        os << "<2^" << i << ":" << _buckets[i];
    }
    os << "]";
}

void
Distribution::print(std::ostream &os) const
{
    os << "count=" << _count << " [";
    bool first = true;
    for (std::size_t i = 0; i < _counts.size(); ++i) {
        if (_counts[i] == 0)
            continue;
        if (!first)
            os << ", ";
        first = false;
        os << i << ":" << _counts[i];
    }
    os << "]";
}

template <typename T, typename... Args>
T &
StatSet::add(const std::string &name, Args &&...args)
{
    if (find(name) != nullptr)
        panic("duplicate stat name '%s' in set '%s'", name.c_str(),
              _prefix.c_str());
    auto stat = std::make_unique<T>(name, std::forward<Args>(args)...);
    T &ref = *stat;
    _stats.push_back(std::move(stat));
    return ref;
}

Counter &
StatSet::counter(const std::string &name, const std::string &desc)
{
    return add<Counter>(name, desc);
}

Accumulator &
StatSet::accumulator(const std::string &name, const std::string &desc)
{
    return add<Accumulator>(name, desc);
}

Histogram &
StatSet::histogram(const std::string &name, const std::string &desc,
                   unsigned buckets)
{
    return add<Histogram>(name, desc, buckets);
}

Distribution &
StatSet::distribution(const std::string &name, const std::string &desc,
                      std::size_t max_value)
{
    return add<Distribution>(name, desc, max_value);
}

const Stat *
StatSet::find(const std::string &name) const
{
    for (const auto &s : _stats)
        if (s->name() == name)
            return s.get();
    return nullptr;
}

Stat *
StatSet::find(const std::string &name)
{
    return const_cast<Stat *>(
        static_cast<const StatSet *>(this)->find(name));
}

void
StatSet::dump(std::ostream &os) const
{
    for (const auto &s : _stats) {
        os << std::left << std::setw(44)
           << (_prefix.empty() ? s->name() : _prefix + "." + s->name())
           << " ";
        s->print(os);
        os << "   # " << s->desc() << "\n";
    }
}

void
StatSet::resetAll()
{
    for (auto &s : _stats)
        s->reset();
}

} // namespace limitless
