#include "stats/sampler.hh"

#include <algorithm>
#include <cmath>

#include "sim/log.hh"

namespace limitless
{

void
Sampler::start()
{
    _running = true;
    for (Series &s : _series)
        s.last = s.probe();
    tick();
}

void
Sampler::tick()
{
    if (!_running)
        return;
    _eq.schedule(_eq.now() + _interval, [this]() {
        if (!_running)
            return;
        for (Series &s : _series) {
            const double now = s.probe();
            s.values.push_back(now - s.last);
            s.last = now;
        }
        // Check the stop predicate *after* sampling so the run's final
        // interval is recorded, and never before the run has begun.
        if (_done && _done()) {
            _running = false;
            return;
        }
        tick();
    }, EventPriority::stats);
}

const std::vector<double> &
Sampler::values(const std::string &name) const
{
    for (const Series &s : _series)
        if (s.name == name)
            return s.values;
    fatal("sampler: no series named '%s'", name.c_str());
}

void
Sampler::printProfile(std::ostream &os, unsigned max_columns) const
{
    static const char levels[] = " .:-=+*#%@";
    std::size_t name_w = 0;
    for (const Series &s : _series)
        name_w = std::max(name_w, s.name.size());

    for (const Series &s : _series) {
        // Downsample to at most max_columns buckets by averaging.
        const std::size_t n = s.values.size();
        const std::size_t cols = std::min<std::size_t>(n, max_columns);
        std::vector<double> buckets(cols, 0.0);
        if (cols) {
            for (std::size_t i = 0; i < n; ++i)
                buckets[i * cols / n] += s.values[i];
            double peak = 0;
            for (double &b : buckets)
                peak = std::max(peak, b);
            os << "  " << s.name
               << std::string(name_w - s.name.size() + 1, ' ') << "|";
            for (double b : buckets) {
                const int level =
                    peak > 0 ? static_cast<int>(b / peak * 9.0) : 0;
                os << levels[std::clamp(level, 0, 9)];
            }
            os << "| peak " << peak << "/interval\n";
        }
    }
}

} // namespace limitless
