#include "check/controlled_network.hh"

#include <cassert>
#include <ostream>

#include "sim/log.hh"

namespace limitless
{

void
ControlledNetwork::send(PacketPtr pkt)
{
    assert(pkt);
    assert(pkt->src < numNodes() && pkt->dest < numNodes());
    assert(pkt->src != pkt->dest &&
           "local loopback bypasses the network (Node::sendFrom)");
    _channels[{pkt->src, pkt->dest}].push_back(std::move(pkt));
}

void
ControlledNetwork::setReceiver(NodeId node, Receiver recv)
{
    _recv.at(node) = std::move(recv);
}

std::size_t
ControlledNetwork::inFlight() const
{
    std::size_t n = 0;
    for (const auto &[key, q] : _channels)
        n += q.size();
    return n;
}

bool
ControlledNetwork::deliverHead(NodeId src, NodeId dest)
{
    auto it = _channels.find({src, dest});
    if (it == _channels.end() || it->second.empty())
        return false;
    PacketPtr pkt = std::move(it->second.front());
    it->second.pop_front();
    assert(_recv.at(dest) && "no receiver registered for node");
    _recv[dest](std::move(pkt));
    return true;
}

void
ControlledNetwork::checkpoint(std::ostream &os) const
{
    os << "net{";
    for (const auto &[key, q] : _channels) {
        if (q.empty())
            continue;
        os << key.first << ">" << key.second << ":";
        for (const PacketPtr &pkt : q) {
            os << opcodeName(pkt->opcode) << "(";
            for (std::size_t i = 0; i < pkt->operands.size(); ++i)
                os << (i ? "," : "") << pkt->operands[i];
            os << "|";
            for (std::size_t i = 0; i < pkt->data.size(); ++i)
                os << (i ? "," : "") << pkt->data[i];
            os << ")";
        }
        os << ";";
    }
    os << "}";
}

} // namespace limitless
