#include "check/minimize.hh"

#include <algorithm>
#include <cassert>

namespace limitless
{

bool
scheduleViolates(const CheckConfig &cfg, const Schedule &schedule,
                 ViolationKind kind, std::vector<std::string> *messages)
{
    CheckWorld world(cfg);
    for (const Choice &c : schedule) {
        if (!world.apply(c))
            continue; // candidate dropped this choice's precondition
        const WorldViolations v = world.checkStep();
        if (v.any()) {
            if (messages)
                *messages = v.messages;
            return v.kind == kind;
        }
    }
    if (!world.enabled().empty())
        return false; // not terminal: deadlock/quiescence undefined here
    const WorldViolations v = world.checkTerminal();
    if (v.any() && messages)
        *messages = v.messages;
    return v.kind == kind;
}

Schedule
minimizeSchedule(const CheckConfig &cfg, const Schedule &schedule,
                 ViolationKind kind)
{
    assert(scheduleViolates(cfg, schedule, kind) &&
           "minimize called with a non-failing schedule");

    Schedule current = schedule;
    std::size_t granularity = 2;
    while (current.size() >= 2) {
        const std::size_t chunk =
            std::max<std::size_t>(1, current.size() / granularity);
        bool reduced = false;
        for (std::size_t begin = 0; begin < current.size();
             begin += chunk) {
            // Candidate = current minus [begin, begin+chunk).
            Schedule candidate;
            candidate.reserve(current.size());
            for (std::size_t i = 0; i < current.size(); ++i)
                if (i < begin || i >= begin + chunk)
                    candidate.push_back(current[i]);
            if (candidate.size() < current.size() &&
                scheduleViolates(cfg, candidate, kind)) {
                current = std::move(candidate);
                granularity = std::max<std::size_t>(granularity - 1, 2);
                reduced = true;
                break;
            }
        }
        if (!reduced) {
            if (granularity >= current.size())
                break;
            granularity = std::min(granularity * 2, current.size());
        }
    }
    return current;
}

} // namespace limitless
