#include "check/check_config.hh"

#include <cassert>
#include <sstream>

#include "sim/log.hh"

namespace limitless
{

const char *
checkKindName(ProtocolKind kind)
{
    switch (kind) {
      case ProtocolKind::fullMap: return "full_map";
      case ProtocolKind::limited: return "limited";
      case ProtocolKind::limitless: return "limitless";
      case ProtocolKind::chained: return "chained";
      case ProtocolKind::privateOnly: return "private";
    }
    return "?";
}

ProtocolKind
checkKindFromName(const std::string &name)
{
    for (ProtocolKind kind :
         {ProtocolKind::fullMap, ProtocolKind::limited,
          ProtocolKind::limitless, ProtocolKind::chained,
          ProtocolKind::privateOnly}) {
        if (name == checkKindName(kind))
            return kind;
    }
    fatal("unknown protocol kind '%s'", name.c_str());
}

std::string
CheckConfig::name() const
{
    std::ostringstream os;
    os << checkKindName(protocol.kind);
    if (protocol.kind == ProtocolKind::limited ||
        protocol.kind == ProtocolKind::limitless)
        os << protocol.pointers;
    if (protocol.kind == ProtocolKind::limitless &&
        protocol.limitlessMode == LimitlessMode::fullEmulation)
        os << "-emu";
    if (!protocol.trapOnWrite)
        os << "-ta"; // Trap-Always
    os << "/" << script << " " << nodes << "n " << lines << "l";
    if (deferDepth != 4)
        os << " d" << deferDepth;
    if (topology.kind != TopologyKind::mesh)
        os << " " << topologyKindName(topology.kind);
    if (topology.clusterSize > 1)
        os << " c" << topology.clusterSize;
    if (hier)
        os << " hier";
    return os.str();
}

MachineConfig
CheckConfig::machineConfig() const
{
    MachineConfig cfg;
    cfg.numNodes = nodes;
    cfg.topology = topology;
    if (!cfg.topology.width)
        cfg.topology.width = nodes; // 1 x N line; link structure is
                                    // irrelevant under makeNetwork
    cfg.protocol = protocol;
    cfg.hier = hier;
    cfg.mem.deferDepth = deferDepth;
    // One cache set per node: any two distinct lines conflict, so the
    // scripts can force evictions and replacement races.
    cfg.cache.cacheBytes = cfg.lineBytes;
    cfg.seed = seed;
    return cfg;
}

std::vector<Addr>
CheckConfig::lineSet(const AddressMap &amap) const
{
    std::vector<Addr> set;
    set.reserve(lines);
    for (unsigned j = 0; j < lines; ++j)
        set.push_back(amap.addrOnNode(j % nodes, j / nodes));
    return set;
}

std::vector<std::vector<MemOp>>
CheckConfig::buildScript(const AddressMap &amap) const
{
    const std::vector<Addr> line = lineSet(amap);
    std::vector<std::vector<MemOp>> per_node(nodes);

    auto store = [&](Addr a, std::uint64_t v) {
        return MemOp{MemOpKind::store, a, v};
    };
    auto load = [&](Addr a) { return MemOp{MemOpKind::load, a, 0}; };

    for (unsigned i = 0; i < nodes; ++i) {
        std::vector<MemOp> &ops = per_node[i];
        // Distinct store values per (node, op index) so wild data is
        // attributable; see CheckWorld's observed-value check.
        const std::uint64_t base = (i + 1) * 100;
        if (script == "smoke") {
            ops.push_back(store(line[0], base + 1));
            ops.push_back(load(line[0]));
        } else if (script == "conflict") {
            assert(lines >= 2 && "conflict script needs two lines");
            ops.push_back(store(line[0], base + 1));
            ops.push_back(load(line[1]));
            ops.push_back(load(line[0]));
        } else if (script == "update") {
            ops.push_back(store(line[0], base + 1));
            ops.push_back(load(line[0]));
            ops.push_back(store(line[0], base + 2));
        } else if (script == "rmw") {
            // Read-modify-write: the store on a read-shared line takes
            // the RO -> RW upgrade path (cache-side upgrade_rw row).
            ops.push_back(load(line[0]));
            ops.push_back(store(line[0], base + 1));
        } else {
            fatal("unknown check script '%s'", script.c_str());
        }
        if (opsPerNode) {
            // Cycle the pattern up (or trim down) to the requested
            // length, keeping store values distinct.
            const std::vector<MemOp> pattern = ops;
            ops.clear();
            for (unsigned k = 0; k < opsPerNode; ++k) {
                MemOp op = pattern[k % pattern.size()];
                if (op.kind == MemOpKind::store)
                    op.value = base + k + 1;
                ops.push_back(op);
            }
        }
    }
    return per_node;
}

} // namespace limitless
