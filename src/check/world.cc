#include "check/world.hh"

#include <cassert>
#include <sstream>

#include "machine/coherence_monitor.hh"
#include "sim/log.hh"

namespace limitless
{

const char *
violationKindName(ViolationKind kind)
{
    switch (kind) {
      case ViolationKind::none: return "none";
      case ViolationKind::safety: return "safety";
      case ViolationKind::value: return "value";
      case ViolationKind::livelock: return "livelock";
      case ViolationKind::deadlock: return "deadlock";
      case ViolationKind::quiescent: return "quiescent";
      case ViolationKind::undeclared: return "undeclared";
    }
    return "?";
}

ViolationKind
violationKindFromName(const std::string &name)
{
    for (ViolationKind kind :
         {ViolationKind::none, ViolationKind::safety, ViolationKind::value,
          ViolationKind::livelock, ViolationKind::deadlock,
          ViolationKind::quiescent, ViolationKind::undeclared}) {
        if (name == violationKindName(kind))
            return kind;
    }
    fatal("unknown violation kind '%s'", name.c_str());
}

std::string
describeChoice(const Choice &c)
{
    std::ostringstream os;
    if (c.kind == Choice::Kind::issue) {
        os << "issue node " << c.node;
    } else {
        os << "deliver " << c.src << "->" << c.node << " "
           << opcodeName(c.opcode) << " line 0x" << std::hex << c.line;
    }
    return os.str();
}

CheckWorld::CheckWorld(const CheckConfig &cfg)
    : _cfg(cfg), _prog(cfg.nodes)
{
    MachineConfig mc = cfg.machineConfig();
    mc.makeNetwork = [this, nodes = cfg.nodes](EventQueue &)
        -> std::unique_ptr<Network> {
        auto net = std::make_unique<ControlledNetwork>(nodes);
        _net = net.get();
        return net;
    };
    _m = std::make_unique<Machine>(mc);
    assert(_net);

    const AddressMap &amap = _m->addressMap();
    if (cfg.script == "update")
        _m->policy().markUpdateMode(cfg.lineSet(amap)[0]);

    _script = cfg.buildScript(amap);
    for (const std::vector<MemOp> &ops : _script) {
        for (const MemOp &op : ops)
            if (op.kind != MemOpKind::load)
                _legalValues[op.addr].insert(op.value);
    }
}

std::vector<Choice>
CheckWorld::enabled() const
{
    std::vector<Choice> out;
    for (unsigned i = 0; i < _cfg.nodes; ++i) {
        const Progress &p = _prog[i];
        if (!p.outstanding && p.next < _script[i].size()) {
            Choice c;
            c.kind = Choice::Kind::issue;
            c.node = i;
            const MemOp &op = _script[i][p.next];
            c.line = _m->addressMap().lineAddr(op.addr);
            out.push_back(c);
        }
    }
    _net->forEachChannel([&](NodeId src, NodeId dest, const Packet &head,
                             std::size_t) {
        Choice c;
        c.kind = Choice::Kind::deliver;
        c.node = dest;
        c.src = src;
        c.opcode = head.opcode;
        c.line = head.operands.empty()
                     ? 0
                     : _m->addressMap().lineAddr(head.addr());
        out.push_back(c);
    });
    return out;
}

bool
CheckWorld::apply(const Choice &c, std::string *why)
{
    if (c.kind == Choice::Kind::issue) {
        if (c.node >= _cfg.nodes) {
            if (why)
                *why = "no such node";
            return false;
        }
        Progress &p = _prog[c.node];
        if (p.outstanding) {
            if (why)
                *why = "node has an outstanding operation";
            return false;
        }
        if (p.next >= _script[c.node].size()) {
            if (why)
                *why = "script exhausted";
            return false;
        }
        const MemOp op = _script[c.node][p.next];
        ++p.next;
        p.outstanding = true;
        const unsigned node = c.node;
        _m->node(node).cache().access(op,
                                      [this, node, op](std::uint64_t v) {
                                          onComplete(node, op, v);
                                      });
    } else {
        if (!_net->deliverHead(c.src, c.node)) {
            if (why)
                *why = "channel empty";
            return false;
        }
    }
    ++_steps;
    drain();
    return true;
}

void
CheckWorld::onComplete(unsigned node, const MemOp &op, std::uint64_t value)
{
    assert(_prog[node].outstanding);
    _prog[node].outstanding = false;

    // Observed-value check: every load (and store pre-value) must see
    // either the initial zero or a value some scripted store wrote to
    // that word. Catches wild data the structural checks can miss while
    // traffic is still in flight.
    if (value == 0)
        return;
    auto it = _legalValues.find(op.addr);
    if (it != _legalValues.end() && it->second.count(value))
        return;
    std::ostringstream os;
    os << "value: node " << node << " observed " << value << " at 0x"
       << std::hex << op.addr << std::dec
       << ", which no scripted store wrote there";
    _valueViolations.push_back(os.str());
}

void
CheckWorld::drain()
{
    std::uint64_t n = 0;
    while (_m->eventQueue().runOne()) {
        if (++n > drainEventCap) {
            _livelock = true;
            break;
        }
    }
}

bool
CheckWorld::done() const
{
    for (unsigned i = 0; i < _cfg.nodes; ++i)
        if (_prog[i].outstanding || _prog[i].next < _script[i].size())
            return false;
    return true;
}

WorldViolations
CheckWorld::checkStep() const
{
    WorldViolations v;
    if (_livelock) {
        v.kind = ViolationKind::livelock;
        v.messages.push_back("livelock: a drain exceeded the event cap");
        return v;
    }
    CoherenceMonitor monitor(*_m);
    for (const CoherenceViolation &cv : monitor.collectGlobalViolations())
        v.messages.push_back(cv.what);
    if (!v.messages.empty()) {
        v.kind = ViolationKind::safety;
        return v;
    }
    if (!_valueViolations.empty()) {
        v.kind = ViolationKind::value;
        v.messages = _valueViolations;
    }
    return v;
}

WorldViolations
CheckWorld::checkTerminal() const
{
    WorldViolations v;
    if (!done()) {
        v.kind = ViolationKind::deadlock;
        for (unsigned i = 0; i < _cfg.nodes; ++i) {
            const Progress &p = _prog[i];
            if (!p.outstanding && p.next >= _script[i].size())
                continue;
            std::ostringstream os;
            os << "deadlock: node " << i << " stuck at script op "
               << (p.outstanding ? p.next - 1 : p.next) << "/"
               << _script[i].size()
               << (p.outstanding ? " (outstanding, never acked)"
                                 : " (never issued)");
            v.messages.push_back(os.str());
        }
        return v;
    }
    CoherenceMonitor monitor(*_m);
    for (const CoherenceViolation &cv : monitor.collectGlobalViolations())
        v.messages.push_back(cv.what);
    for (const CoherenceViolation &cv :
         monitor.collectQuiescentViolations())
        v.messages.push_back(cv.what);
    if (!v.messages.empty()) {
        v.kind = ViolationKind::quiescent;
        return v;
    }
    for (const CoherenceViolation &cv :
         monitor.collectUndeclaredTransitions())
        v.messages.push_back(cv.what);
    if (!v.messages.empty())
        v.kind = ViolationKind::undeclared;
    return v;
}

std::string
CheckWorld::fingerprint() const
{
    std::ostringstream os;
    for (unsigned i = 0; i < _cfg.nodes; ++i) {
        const Node &node = _m->node(i);
        node.cache().checkpoint(os);
        node.mem().checkpoint(os);
        if (const ChipHomeController *chip = node.chipHome())
            chip->checkpoint(os);
        os << "i" << node.ipi().depth();
    }
    _net->checkpoint(os);
    for (unsigned i = 0; i < _cfg.nodes; ++i)
        os << "p" << _prog[i].next << (_prog[i].outstanding ? "o" : ".");
    return os.str();
}

} // namespace limitless
