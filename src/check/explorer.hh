/**
 * @file
 * Bounded exhaustive breadth-first exploration over CheckWorld states.
 *
 * Worlds cannot be snapshotted, so the frontier stores choice schedules
 * and every edge is taken by replaying its schedule on a fresh world
 * (stateless model checking). Visited states are deduplicated by exact
 * fingerprint; BFS order makes the first counterexample a shortest one.
 */

#ifndef LIMITLESS_CHECK_EXPLORER_HH
#define LIMITLESS_CHECK_EXPLORER_HH

#include <cstdint>
#include <optional>

#include "check/check_config.hh"
#include "check/choice.hh"
#include "check/world.hh"

namespace limitless
{

/** Exploration bounds. All are soft: hitting one truncates coverage
 *  and is reported, it is not a violation. */
struct ExploreLimits
{
    std::uint64_t maxStates = 200'000;
    unsigned maxDepth = 64;
    std::uint64_t maxMillis = 0; ///< wall clock; 0 = unbounded
};

/** Exploration statistics. */
struct ExploreStats
{
    std::uint64_t states = 0;      ///< unique fingerprints reached
    std::uint64_t transitions = 0; ///< edges applied (incl. duplicates)
    std::uint64_t duplicates = 0;  ///< edges landing on a known state
    std::uint64_t terminals = 0;   ///< states with no enabled choice
    unsigned maxDepth = 0;
    bool truncatedByStates = false;
    bool truncatedByDepth = false;
    bool truncatedByTime = false;
    std::uint64_t elapsedMs = 0;

    bool
    exhaustive() const
    {
        return !truncatedByStates && !truncatedByDepth && !truncatedByTime;
    }
};

/** A violating execution: the schedule that reaches it plus messages. */
struct Counterexample
{
    ViolationKind kind = ViolationKind::none;
    Schedule schedule;
    std::vector<std::string> messages;
};

/** Outcome of one exploration. */
struct ExploreResult
{
    std::optional<Counterexample> cex;
    ExploreStats stats;

    bool ok() const { return !cex.has_value(); }
};

/**
 * Explore cfg's state space within limits. Dispatch hooks (coverage
 * observers, guard flips) installed by the caller stay active for every
 * replayed world, so fault-injection runs use the same entry point.
 */
ExploreResult explore(const CheckConfig &cfg, const ExploreLimits &limits);

/** Replay @p schedule on a fresh world; aborts if any choice fails to
 *  apply (schedules produced by explore() always re-apply cleanly). */
std::unique_ptr<CheckWorld> replaySchedule(const CheckConfig &cfg,
                                           const Schedule &schedule);

} // namespace limitless

#endif // LIMITLESS_CHECK_EXPLORER_HH
