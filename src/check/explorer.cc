#include "check/explorer.hh"

#include <chrono>
#include <deque>
#include <unordered_set>

#include "sim/log.hh"

namespace limitless
{

std::unique_ptr<CheckWorld>
replaySchedule(const CheckConfig &cfg, const Schedule &schedule)
{
    auto world = std::make_unique<CheckWorld>(cfg);
    for (const Choice &c : schedule) {
        std::string why;
        if (!world->apply(c, &why))
            fatal("explorer replay diverged at '%s': %s",
                  describeChoice(c).c_str(), why.c_str());
    }
    return world;
}

ExploreResult
explore(const CheckConfig &cfg, const ExploreLimits &limits)
{
    using Clock = std::chrono::steady_clock;
    const Clock::time_point start = Clock::now();
    auto elapsed_ms = [&]() {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                Clock::now() - start)
                .count());
    };

    ExploreResult result;
    ExploreStats &stats = result.stats;

    struct Frontier
    {
        Schedule schedule;
        std::vector<Choice> enabled;
    };

    std::deque<Frontier> queue;
    std::unordered_set<std::string> visited;

    // Root state: the machine before any choice.
    {
        CheckWorld root(cfg);
        visited.insert(root.fingerprint());
        stats.states = 1;
        std::vector<Choice> en = root.enabled();
        if (en.empty()) {
            stats.terminals = 1;
            WorldViolations v = root.checkTerminal();
            if (v.any())
                result.cex = Counterexample{v.kind, {}, v.messages};
            stats.elapsedMs = elapsed_ms();
            return result;
        }
        queue.push_back(Frontier{{}, std::move(en)});
    }

    while (!queue.empty()) {
        if (limits.maxMillis && elapsed_ms() > limits.maxMillis) {
            stats.truncatedByTime = true;
            break;
        }
        Frontier cur = std::move(queue.front());
        queue.pop_front();

        for (const Choice &choice : cur.enabled) {
            if (visited.size() >= limits.maxStates) {
                stats.truncatedByStates = true;
                break;
            }
            std::unique_ptr<CheckWorld> world =
                replaySchedule(cfg, cur.schedule);
            if (!world->apply(choice))
                fatal("explorer: enumerated choice '%s' failed to apply",
                      describeChoice(choice).c_str());
            ++stats.transitions;

            Schedule schedule = cur.schedule;
            schedule.push_back(choice);

            const WorldViolations step = world->checkStep();
            if (step.any()) {
                result.cex = Counterexample{step.kind, std::move(schedule),
                                            step.messages};
                stats.states = visited.size();
                stats.elapsedMs = elapsed_ms();
                return result;
            }

            if (!visited.insert(world->fingerprint()).second) {
                ++stats.duplicates;
                continue;
            }
            const auto depth = static_cast<unsigned>(schedule.size());
            if (depth > stats.maxDepth)
                stats.maxDepth = depth;

            std::vector<Choice> en = world->enabled();
            if (en.empty()) {
                ++stats.terminals;
                const WorldViolations term = world->checkTerminal();
                if (term.any()) {
                    result.cex = Counterexample{
                        term.kind, std::move(schedule), term.messages};
                    stats.states = visited.size();
                    stats.elapsedMs = elapsed_ms();
                    return result;
                }
                continue;
            }
            if (depth >= limits.maxDepth) {
                stats.truncatedByDepth = true;
                continue;
            }
            queue.push_back(
                Frontier{std::move(schedule), std::move(en)});
        }
        if (stats.truncatedByStates)
            break;
    }

    stats.states = visited.size();
    stats.elapsedMs = elapsed_ms();
    return result;
}

} // namespace limitless
