#include "check/trace_io.hh"

#include <fstream>
#include <sstream>

#include "proto/protocol_table.hh"

namespace limitless
{

namespace
{

const char *
limitlessModeName(LimitlessMode mode)
{
    return mode == LimitlessMode::fullEmulation ? "emulate" : "stall";
}

bool
limitlessModeFromName(const std::string &name, LimitlessMode &out)
{
    if (name == "stall") {
        out = LimitlessMode::stallApprox;
        return true;
    }
    if (name == "emulate") {
        out = LimitlessMode::fullEmulation;
        return true;
    }
    return false;
}

bool
kindFromNameNoAbort(const std::string &name, ProtocolKind &out)
{
    for (ProtocolKind kind :
         {ProtocolKind::fullMap, ProtocolKind::limited,
          ProtocolKind::limitless, ProtocolKind::chained,
          ProtocolKind::privateOnly}) {
        if (name == checkKindName(kind)) {
            out = kind;
            return true;
        }
    }
    return false;
}

bool
tableSideFromName(const std::string &name, TableSide &out)
{
    for (TableSide side :
         {TableSide::home, TableSide::cache, TableSide::chip}) {
        if (name == tableSideName(side)) {
            out = side;
            return true;
        }
    }
    return false;
}

bool
opcodeFromName(const std::string &name, Opcode &out)
{
    static const Opcode all[] = {
        Opcode::RREQ,     Opcode::WREQ,  Opcode::REPM,
        Opcode::UPDATE,   Opcode::ACKC,  Opcode::REPC,
        Opcode::WUPD,     Opcode::RUNC,  Opcode::RDATA,
        Opcode::WDATA,    Opcode::INV,   Opcode::BUSY,
        Opcode::REPC_ACK, Opcode::MUPD,  Opcode::WACK,
        Opcode::IPI_MESSAGE, Opcode::IPI_LOCK_GRANT,
        Opcode::IPI_BLOCK_XFER,
    };
    for (Opcode op : all) {
        if (name == opcodeName(op)) {
            out = op;
            return true;
        }
    }
    return false;
}

bool
fail(std::string *error, const std::string &what)
{
    if (error)
        *error = what;
    return false;
}

/** Clears every installed guard flip on scope exit. */
struct FlipCleanup
{
    ~FlipCleanup() { DispatchHooks::instance().clearFlips(); }
};

} // namespace

void
writeTrace(std::ostream &os, const CheckTrace &trace)
{
    const CheckConfig &cfg = trace.config;
    os << "limitless-check-trace-v1\n"
       << "kind " << checkKindName(cfg.protocol.kind) << "\n"
       << "pointers " << cfg.protocol.pointers << "\n"
       << "limitless_mode "
       << limitlessModeName(cfg.protocol.limitlessMode) << "\n"
       << "software_latency " << cfg.protocol.softwareLatency << "\n"
       << "trap_on_write " << (cfg.protocol.trapOnWrite ? 1 : 0) << "\n"
       << "local_bit " << (cfg.protocol.localBit ? 1 : 0) << "\n"
       << "nodes " << cfg.nodes << "\n"
       << "lines " << cfg.lines << "\n"
       << "script " << cfg.script << "\n"
       << "ops_per_node " << cfg.opsPerNode << "\n"
       << "defer_depth " << cfg.deferDepth << "\n"
       << "seed " << cfg.seed << "\n";
    // Topology keys are written only when non-default, so flat-machine
    // traces keep the exact byte format older tools produced.
    if (cfg.topology.kind != TopologyKind::mesh)
        os << "topology " << topologyKindName(cfg.topology.kind) << "\n";
    if (cfg.topology.width)
        os << "topo_width " << cfg.topology.width << "\n";
    if (cfg.topology.height)
        os << "topo_height " << cfg.topology.height << "\n";
    if (cfg.topology.clusterSize > 1)
        os << "cluster " << cfg.topology.clusterSize << "\n";
    if (cfg.hier)
        os << "hier 1\n";
    for (const GuardFlip &f : trace.flips)
        os << "flip " << checkKindName(f.kind) << " "
           << tableSideName(f.side) << " " << f.row << "\n";
    os << "violation " << violationKindName(trace.violation) << "\n";
    for (const std::string &m : trace.messages)
        os << "msg " << m << "\n";
    os << "schedule\n";
    for (const Choice &c : trace.schedule) {
        if (c.kind == Choice::Kind::issue) {
            os << "issue " << unsigned(c.node) << "\n";
        } else {
            os << "deliver " << unsigned(c.src) << " " << unsigned(c.node)
               << " " << opcodeName(c.opcode) << " 0x" << std::hex
               << c.line << std::dec << "\n";
        }
    }
    os << "end\n";
}

bool
parseTrace(std::istream &is, CheckTrace &out, std::string *error)
{
    out = CheckTrace{};
    std::string line;
    if (!std::getline(is, line) || line != "limitless-check-trace-v1")
        return fail(error, "missing limitless-check-trace-v1 header");

    bool in_schedule = false;
    bool saw_end = false;
    std::size_t lineno = 1;
    while (std::getline(is, line)) {
        ++lineno;
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        std::string key;
        ls >> key;
        auto bad = [&](const char *what) {
            std::ostringstream msg;
            msg << "line " << lineno << ": " << what << " ('" << line
                << "')";
            return fail(error, msg.str());
        };

        if (!in_schedule) {
            std::string value;
            if (key == "msg") {
                std::getline(ls, value);
                if (!value.empty() && value[0] == ' ')
                    value.erase(0, 1);
                out.messages.push_back(value);
                continue;
            }
            if (key == "schedule") {
                in_schedule = true;
                continue;
            }
            if (key == "flip") {
                std::string kind_s, side_s;
                unsigned row = 0;
                if (!(ls >> kind_s >> side_s >> row))
                    return bad("malformed flip");
                GuardFlip f;
                if (!kindFromNameNoAbort(kind_s, f.kind))
                    return bad("unknown scheme");
                if (!tableSideFromName(side_s, f.side))
                    return bad("unknown table side");
                f.row = static_cast<std::uint16_t>(row);
                out.flips.push_back(f);
                continue;
            }
            if (!(ls >> value))
                return bad("missing value");
            CheckConfig &cfg = out.config;
            if (key == "kind") {
                if (!kindFromNameNoAbort(value, cfg.protocol.kind))
                    return bad("unknown scheme");
            } else if (key == "pointers")
                cfg.protocol.pointers = std::stoul(value);
            else if (key == "limitless_mode") {
                if (!limitlessModeFromName(value,
                                           cfg.protocol.limitlessMode))
                    return bad("unknown limitless_mode");
            } else if (key == "software_latency")
                cfg.protocol.softwareLatency = std::stoull(value);
            else if (key == "trap_on_write")
                cfg.protocol.trapOnWrite = value != "0";
            else if (key == "local_bit")
                cfg.protocol.localBit = value != "0";
            else if (key == "nodes")
                cfg.nodes = std::stoul(value);
            else if (key == "lines")
                cfg.lines = std::stoul(value);
            else if (key == "script")
                cfg.script = value;
            else if (key == "ops_per_node")
                cfg.opsPerNode = std::stoul(value);
            else if (key == "defer_depth")
                cfg.deferDepth = std::stoul(value);
            else if (key == "seed")
                cfg.seed = std::stoull(value);
            else if (key == "topology") {
                if (!parseTopologyKind(value, cfg.topology))
                    return bad("unknown topology");
            } else if (key == "topo_width")
                cfg.topology.width = std::stoul(value);
            else if (key == "topo_height")
                cfg.topology.height = std::stoul(value);
            else if (key == "cluster")
                cfg.topology.clusterSize = std::stoul(value);
            else if (key == "hier")
                cfg.hier = value != "0";
            else if (key == "violation")
                out.violation = violationKindFromName(value);
            else
                return bad("unknown key");
            continue;
        }

        if (key == "end") {
            saw_end = true;
            break;
        }
        Choice c;
        if (key == "issue") {
            unsigned node = 0;
            if (!(ls >> node))
                return bad("malformed issue");
            c.kind = Choice::Kind::issue;
            c.node = static_cast<NodeId>(node);
        } else if (key == "deliver") {
            unsigned src = 0, dest = 0;
            std::string op_s, line_s;
            if (!(ls >> src >> dest >> op_s >> line_s))
                return bad("malformed deliver");
            c.kind = Choice::Kind::deliver;
            c.src = static_cast<NodeId>(src);
            c.node = static_cast<NodeId>(dest);
            if (!opcodeFromName(op_s, c.opcode))
                return bad("unknown opcode");
            c.line = std::stoull(line_s, nullptr, 0);
        } else {
            return bad("unknown schedule entry");
        }
        out.schedule.push_back(c);
    }
    if (!saw_end)
        return fail(error, "trace truncated: no 'end' line");
    return true;
}

bool
saveTrace(const std::string &path, const CheckTrace &trace,
          std::string *error)
{
    std::ofstream os(path);
    if (!os)
        return fail(error, "cannot open '" + path + "' for writing");
    writeTrace(os, trace);
    return os.good() || fail(error, "write to '" + path + "' failed");
}

bool
loadTrace(const std::string &path, CheckTrace &out, std::string *error)
{
    std::ifstream is(path);
    if (!is)
        return fail(error, "cannot open '" + path + "'");
    return parseTrace(is, out, error);
}

bool
replayTrace(const CheckTrace &trace, std::ostream *verbose)
{
    FlipCleanup cleanup;
    DispatchHooks::instance().clearFlips();
    for (const GuardFlip &f : trace.flips)
        DispatchHooks::instance().flipGuard(f.kind, f.side, f.row);

    CheckWorld world(trace.config);
    if (verbose) {
        *verbose << "replaying " << trace.config.name() << ", "
                 << trace.schedule.size() << " choices, expecting "
                 << violationKindName(trace.violation) << "\n";
        for (const GuardFlip &f : trace.flips)
            *verbose << "  guard flip: " << checkKindName(f.kind) << "/"
                     << tableSideName(f.side) << " row " << f.row << "\n";
    }

    auto report = [&](const WorldViolations &v, const char *when) {
        if (!verbose)
            return;
        *verbose << when << ": " << violationKindName(v.kind) << "\n";
        for (const std::string &m : v.messages)
            *verbose << "    " << m << "\n";
    };

    std::size_t step = 0;
    for (const Choice &c : trace.schedule) {
        ++step;
        std::string why;
        const bool applied = world.apply(c, &why);
        if (verbose)
            *verbose << "  [" << step << "] " << describeChoice(c)
                     << (applied ? "" : "  (skipped: " + why + ")")
                     << "\n";
        if (!applied)
            continue;
        const WorldViolations v = world.checkStep();
        if (v.any()) {
            report(v, "violation after step");
            return v.kind == trace.violation;
        }
    }
    if (!world.enabled().empty()) {
        if (verbose)
            *verbose << "schedule exhausted with choices still enabled; "
                        "no violation observed\n";
        return trace.violation == ViolationKind::none;
    }
    const WorldViolations v = world.checkTerminal();
    if (v.any()) {
        report(v, "violation at terminal state");
        return v.kind == trace.violation;
    }
    if (verbose)
        *verbose << "terminal state clean; no violation observed\n";
    return trace.violation == ViolationKind::none;
}

} // namespace limitless
