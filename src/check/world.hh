/**
 * @file
 * CheckWorld: one explorable instance of the real simulator.
 *
 * A world wraps a real Machine (real CacheController, MemoryController,
 * home policy tables, IPI + trap handler) whose network is a
 * ControlledNetwork. A *step* applies one Choice — deliver a channel
 * head or issue a scripted operation — and then drains the event queue
 * completely, so between steps the machine is at an event-quiescent
 * point and the only pending nondeterminism is which packet/op goes
 * next. States are compared by an exact serialized fingerprint of the
 * protocol-relevant state (timing excluded; see docs/CHECKER.md for the
 * timing-invariance argument).
 *
 * Worlds are not snapshottable (components hold callbacks and event
 * references), so the explorer re-reaches states by replaying choice
 * schedules from scratch — the stateless-model-checking approach.
 */

#ifndef LIMITLESS_CHECK_WORLD_HH
#define LIMITLESS_CHECK_WORLD_HH

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "check/check_config.hh"
#include "check/choice.hh"
#include "check/controlled_network.hh"
#include "machine/machine.hh"

namespace limitless
{

/** What kind of property a violation breaches. */
enum class ViolationKind
{
    none,
    safety,     ///< instant invariant (single-writer / writer-excludes-readers)
    value,      ///< an access observed a value no script op ever wrote
    livelock,   ///< a drain exceeded the event cap
    deadlock,   ///< no choice enabled but scripted ops incomplete
    quiescent,  ///< structural directory/cache mismatch at quiescence
    undeclared, ///< a controller fired a transition its table lacks
};

const char *violationKindName(ViolationKind kind);
ViolationKind violationKindFromName(const std::string &name);

/** A classified set of violation messages (empty = property holds). */
struct WorldViolations
{
    ViolationKind kind = ViolationKind::none;
    std::vector<std::string> messages;

    bool any() const { return kind != ViolationKind::none; }
};

/** One explorable machine instance. */
class CheckWorld
{
  public:
    explicit CheckWorld(const CheckConfig &cfg);

    /** Completion callbacks inside the machine capture `this`. */
    CheckWorld(const CheckWorld &) = delete;
    CheckWorld &operator=(const CheckWorld &) = delete;

    const CheckConfig &config() const { return _cfg; }
    Machine &machine() { return *_m; }
    ControlledNetwork &network() { return *_net; }

    /** Every choice applicable in the current state: script issues on
     *  idle nodes first, then channel-head deliveries. Deterministic
     *  order. */
    std::vector<Choice> enabled() const;

    /**
     * Apply one choice and drain. Returns false without side effects
     * when the choice does not apply to the current state (empty
     * channel, node busy or script exhausted) — replay and
     * delta-debugging candidates use this to skip stale choices.
     */
    bool apply(const Choice &c, std::string *why = nullptr);

    /** Properties that must hold after every step. */
    WorldViolations checkStep() const;

    /** Properties of a terminal state (call when enabled() is empty). */
    WorldViolations checkTerminal() const;

    /** All scripted operations issued and completed. */
    bool done() const;

    /** Exact serialized protocol state (see class comment). */
    std::string fingerprint() const;

    std::uint64_t stepsApplied() const { return _steps; }

  private:
    void drain();
    void onComplete(unsigned node, const MemOp &op, std::uint64_t value);

    CheckConfig _cfg;
    ControlledNetwork *_net = nullptr; ///< owned by _m
    std::unique_ptr<Machine> _m;
    std::vector<std::vector<MemOp>> _script;

    struct Progress
    {
        unsigned next = 0; ///< next unissued script index
        bool outstanding = false;
    };
    std::vector<Progress> _prog;

    /** Word address -> values some scripted store writes there. Any
     *  observed value outside {0} ∪ this set is wild data. */
    std::map<Addr, std::set<std::uint64_t>> _legalValues;
    std::vector<std::string> _valueViolations;
    bool _livelock = false;
    std::uint64_t _steps = 0;

    /** A drain that runs this many events is livelocked: the largest
     *  legitimate drains (trap storms on 4 nodes) are ~10^2 events. */
    static constexpr std::uint64_t drainEventCap = 1'000'000;
};

} // namespace limitless

#endif // LIMITLESS_CHECK_WORLD_HH
