/**
 * @file
 * A Network implementation that holds every injected packet in a
 * per-(src, dest) FIFO channel until the model checker explicitly
 * delivers it. Replacing the timing-driven mesh with this fabric is
 * what turns the simulator into an explorable transition system: the
 * checker enumerates which channel head to deliver next, and everything
 * else about a step is deterministic.
 */

#ifndef LIMITLESS_CHECK_CONTROLLED_NETWORK_HH
#define LIMITLESS_CHECK_CONTROLLED_NETWORK_HH

#include <deque>
#include <iosfwd>
#include <map>
#include <utility>
#include <vector>

#include "network/network.hh"

namespace limitless
{

/** Checker-controlled packet fabric. */
class ControlledNetwork : public Network
{
  public:
    explicit ControlledNetwork(unsigned nodes) : _recv(nodes) {}

    void send(PacketPtr pkt) override;
    void setReceiver(NodeId node, Receiver recv) override;
    unsigned numNodes() const override
    {
        return static_cast<unsigned>(_recv.size());
    }
    bool busy() const override { return inFlight() != 0; }

    std::size_t inFlight() const;

    /** Visit non-empty channels in (src, dest) order; fn(src, dest,
     *  head packet, depth). */
    template <typename Fn>
    void
    forEachChannel(Fn &&fn) const
    {
        for (const auto &[key, q] : _channels)
            if (!q.empty())
                fn(key.first, key.second, *q.front(), q.size());
    }

    /** Pop the head of (src, dest) and hand it to dest's receiver.
     *  Returns false if the channel is empty. */
    bool deliverHead(NodeId src, NodeId dest);

    /** Serialize in-flight packets (fingerprint support). */
    void checkpoint(std::ostream &os) const;

  private:
    using ChannelKey = std::pair<NodeId, NodeId>;

    /** Ordered map so iteration (and fingerprints) are deterministic. */
    std::map<ChannelKey, std::deque<PacketPtr>> _channels;
    std::vector<Receiver> _recv;
};

} // namespace limitless

#endif // LIMITLESS_CHECK_CONTROLLED_NETWORK_HH
