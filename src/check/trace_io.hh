/**
 * @file
 * Counterexample trace files: a line-oriented text format
 * ("limitless-check-trace-v1") holding the full CheckConfig, any
 * injected guard flips, the violation the schedule produced, and the
 * choice schedule itself. `limitless-check --trace-out` writes one on a
 * violation; `limitless-check --replay` and `limitless-sim
 * --replay-check` step through it on a fresh world and report whether
 * the recorded violation reproduces. See docs/CHECKER.md for the
 * grammar.
 */

#ifndef LIMITLESS_CHECK_TRACE_IO_HH
#define LIMITLESS_CHECK_TRACE_IO_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "check/check_config.hh"
#include "check/choice.hh"
#include "check/world.hh"

namespace limitless
{

/** One injected guard inversion recorded in a trace. */
struct GuardFlip
{
    ProtocolKind kind = ProtocolKind::fullMap;
    TableSide side = TableSide::home;
    std::uint16_t row = 0;
};

/** A replayable counterexample (or any recorded schedule). */
struct CheckTrace
{
    CheckConfig config;
    std::vector<GuardFlip> flips;
    ViolationKind violation = ViolationKind::none;
    std::vector<std::string> messages;
    Schedule schedule;
};

void writeTrace(std::ostream &os, const CheckTrace &trace);

/** Parse a trace; on failure returns false and sets @p error. */
bool parseTrace(std::istream &is, CheckTrace &out, std::string *error);

bool saveTrace(const std::string &path, const CheckTrace &trace,
               std::string *error = nullptr);
bool loadTrace(const std::string &path, CheckTrace &out,
               std::string *error = nullptr);

/**
 * Re-run the trace on a fresh world with its guard flips installed
 * (restoring the hooks afterwards). Steps are echoed to @p verbose when
 * given, one line per choice plus the machine's violation messages.
 * Returns true when the recorded violation kind reproduces.
 */
bool replayTrace(const CheckTrace &trace, std::ostream *verbose = nullptr);

} // namespace limitless

#endif // LIMITLESS_CHECK_TRACE_IO_HH
