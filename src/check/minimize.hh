/**
 * @file
 * Counterexample minimization: delta debugging (Zeller's ddmin) over
 * the choice schedule. A candidate subsequence is replayed on a fresh
 * world — choices that no longer apply are skipped — and kept when it
 * still produces a violation of the same kind. BFS already yields
 * shortest-depth counterexamples; ddmin strips the choices that were
 * merely concurrent with the bug.
 */

#ifndef LIMITLESS_CHECK_MINIMIZE_HH
#define LIMITLESS_CHECK_MINIMIZE_HH

#include "check/check_config.hh"
#include "check/choice.hh"
#include "check/world.hh"

namespace limitless
{

/**
 * True when replaying @p schedule (skipping inapplicable choices)
 * produces a violation of @p kind — the ddmin test predicate, also
 * used by trace replay.
 */
bool scheduleViolates(const CheckConfig &cfg, const Schedule &schedule,
                      ViolationKind kind,
                      std::vector<std::string> *messages = nullptr);

/**
 * Minimize @p schedule while it keeps producing a @p kind violation.
 * Guard flips active in DispatchHooks stay in force for every probe, so
 * fault-injection counterexamples minimize under the same fault.
 */
Schedule minimizeSchedule(const CheckConfig &cfg, const Schedule &schedule,
                          ViolationKind kind);

} // namespace limitless

#endif // LIMITLESS_CHECK_MINIMIZE_HH
