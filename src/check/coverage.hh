/**
 * @file
 * Row-coverage accounting over the dispatch hooks: which declared
 * transition rows actually fired during exploration, and which are dead
 * (declared but unreachable) for a given sweep. The dead-row report is
 * diffed against tests/golden/checker_coverage.txt in CI; every dead
 * row there is justified in docs/CHECKER.md.
 */

#ifndef LIMITLESS_CHECK_COVERAGE_HH
#define LIMITLESS_CHECK_COVERAGE_HH

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <set>
#include <tuple>
#include <vector>

#include "proto/protocol_table.hh"

namespace limitless
{

/** RAII scope recording every fired table row process-wide. Only one
 *  scope may be active at a time (the hooks are a singleton), but rows
 *  may fire from several sweep-worker threads at once (`--jobs`); the
 *  fired set is mutex-guarded. Read accessors (fired/covered) are meant
 *  for after the workers have joined. */
class CoverageScope
{
  public:
    CoverageScope();
    ~CoverageScope();

    CoverageScope(const CoverageScope &) = delete;
    CoverageScope &operator=(const CoverageScope &) = delete;

    using RowKey = std::tuple<ProtocolKind, TableSide, std::uint16_t>;

    const std::set<RowKey> &fired() const { return _fired; }

    bool
    covered(ProtocolKind kind, TableSide side, std::uint16_t row) const
    {
        return _fired.count(RowKey{kind, side, row}) != 0;
    }

  private:
    static void onFire(void *user, const TableInfo &info,
                       const TransitionRow &row);

    std::mutex _mu;
    std::set<RowKey> _fired;
};

/** RAII guard flip (fault injection); clears every flip on exit. */
class GuardFlipScope
{
  public:
    GuardFlipScope(ProtocolKind kind, TableSide side, std::uint16_t row)
    {
        DispatchHooks::instance().flipGuard(kind, side, row);
    }
    ~GuardFlipScope() { DispatchHooks::instance().clearFlips(); }

    GuardFlipScope(const GuardFlipScope &) = delete;
    GuardFlipScope &operator=(const GuardFlipScope &) = delete;
};

/** Coverage of one registered table under a sweep. */
struct TableCoverage
{
    const TableInfo *table = nullptr;
    std::vector<bool> covered; ///< indexed by row id
    std::size_t coveredRows = 0;

    std::size_t rows() const { return covered.size(); }
};

/**
 * Coverage for every table of the given schemes, in registry dump
 * order. Call after registerAllProtocolTables().
 */
std::vector<TableCoverage>
collectCoverage(const CoverageScope &scope,
                const std::vector<ProtocolKind> &kinds);

/**
 * Deterministic per-scheme coverage report: per table, each row with
 * its fired/dead status, then a dead-row summary. The golden file
 * tests/golden/checker_coverage.txt is this output for the standard
 * sweep (`limitless-check` with no arguments).
 */
void writeCoverageReport(std::ostream &os,
                         const std::vector<TableCoverage> &coverage);

/** Look up a row id by its label in a registered table; aborts if the
 *  label is absent (used by fault-injection tests and --flip-guard). */
std::uint16_t findRowByLabel(ProtocolKind kind, TableSide side,
                             const std::string &label);

} // namespace limitless

#endif // LIMITLESS_CHECK_COVERAGE_HH
