#include "check/coverage.hh"

#include <algorithm>
#include <cassert>
#include <iomanip>
#include <ostream>

#include "check/check_config.hh"
#include "sim/log.hh"

namespace limitless
{

CoverageScope::CoverageScope()
{
    DispatchHooks::instance().setObserver(&CoverageScope::onFire, this);
}

CoverageScope::~CoverageScope()
{
    DispatchHooks::instance().clearObserver();
}

void
CoverageScope::onFire(void *user, const TableInfo &info,
                      const TransitionRow &row)
{
    auto *scope = static_cast<CoverageScope *>(user);
    std::lock_guard<std::mutex> lock(scope->_mu);
    scope->_fired.insert(RowKey{info.kind, info.side, row.id});
}

std::vector<TableCoverage>
collectCoverage(const CoverageScope &scope,
                const std::vector<ProtocolKind> &kinds)
{
    registerAllProtocolTables();
    std::vector<TableCoverage> out;
    for (ProtocolKind kind : kinds) {
        for (TableSide side : {TableSide::home, TableSide::cache}) {
            const TableInfo *info =
                ProtocolTableRegistry::instance().find(kind, side);
            assert(info && "scheme table not registered");
            TableCoverage tc;
            tc.table = info;
            tc.covered.resize(info->rows.size(), false);
            for (const TransitionRow &row : info->rows) {
                if (scope.covered(kind, side, row.id)) {
                    tc.covered[row.id] = true;
                    ++tc.coveredRows;
                }
            }
            out.push_back(std::move(tc));
        }
    }
    return out;
}

void
writeCoverageReport(std::ostream &os,
                    const std::vector<TableCoverage> &coverage)
{
    os << "checker row coverage\n"
       << "====================\n";
    std::size_t dead_total = 0;
    for (const TableCoverage &tc : coverage) {
        const TableInfo &t = *tc.table;
        os << "\nscheme " << t.scheme << " (" << tableSideName(t.side)
           << " side): " << tc.coveredRows << "/" << tc.rows()
           << " rows fired\n";
        for (const TransitionRow &row : t.rows) {
            os << "  " << (tc.covered[row.id] ? "fired" : "DEAD ") << "  "
               << std::right << std::setw(3) << row.id << "  " << std::left
               << std::setw(19) << t.stateName(row.state) << std::setw(10)
               << opcodeName(row.opcode) << row.label << "\n";
            if (!tc.covered[row.id])
                ++dead_total;
        }
        os << std::right;
    }
    os << "\ndead rows: " << dead_total
       << " (each justified in docs/CHECKER.md)\n";
}

std::uint16_t
findRowByLabel(ProtocolKind kind, TableSide side, const std::string &label)
{
    registerAllProtocolTables();
    const TableInfo *info =
        ProtocolTableRegistry::instance().find(kind, side);
    if (!info)
        fatal("no registered table for %s/%s", checkKindName(kind),
              tableSideName(side));
    for (const TransitionRow &row : info->rows)
        if (label == row.label)
            return row.id;
    fatal("no row labelled '%s' in the %s/%s table", label.c_str(),
          info->scheme, tableSideName(side));
}

} // namespace limitless
