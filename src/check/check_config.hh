/**
 * @file
 * Model-checker configuration: one small machine instance (2–4 nodes,
 * 1–2 lines) plus a named per-node operation script. The checker
 * explores every interleaving of packet deliveries and script-op issues
 * over the real Machine built from this config — the same
 * TransitionTable rows and home policy units the simulator runs.
 */

#ifndef LIMITLESS_CHECK_CHECK_CONFIG_HH
#define LIMITLESS_CHECK_CHECK_CONFIG_HH

#include <string>
#include <vector>

#include "cache/mem_op.hh"
#include "machine/machine_config.hh"
#include "proto/protocol_params.hh"

namespace limitless
{

/** Short stable scheme name used in trace files and reports. */
const char *checkKindName(ProtocolKind kind);
/** Inverse of checkKindName; aborts on unknown names. */
ProtocolKind checkKindFromName(const std::string &name);

/** One model-checking configuration. */
struct CheckConfig
{
    ProtocolParams protocol;
    unsigned nodes = 2;
    unsigned lines = 1;

    /**
     * Machine shape. The fabric itself is the checker's
     * ControlledNetwork (every delivery interleaving is explored, so
     * link structure is irrelevant), but the topology's clusterSize
     * changes the home mapping: 2x2-cluster torus configs exercise the
     * cluster-interleaved addressing seam under full interleaving
     * exploration. Default: 1 x N mesh, flat addressing.
     */
    TopologyParams topology;

    /**
     * Two-level directory mode: per-chip homes under the inter-chip
     * directory (MachineConfig::hier). Needs topology.clusterSize >= 2;
     * the two-chip exhaustive configs explore every interleaving of the
     * chip-home FSM against the unmodified global tables.
     */
    bool hier = false;

    /**
     * Operation script: "smoke" (each node stores then loads line 0),
     * "conflict" (stores + loads over two lines that collide in the
     * one-set cache, forcing REPM/REPC races; needs lines >= 2),
     * "update" (line 0 is marked update-mode, writes take the
     * WUPD/MUPD/WACK path), "rmw" (each node loads then stores line 0,
     * driving the RO -> RW upgrade path).
     */
    std::string script = "smoke";

    /** Ops per node; 0 keeps the script's natural length. */
    unsigned opsPerNode = 0;

    unsigned deferDepth = 4; ///< home defer-buffer depth (MemParams)
    std::uint64_t seed = 1;

    /** Human-readable one-liner, e.g. "limitless1/smoke 2n 1l". */
    std::string name() const;

    /**
     * The equivalent simulator config: a one-set cache (so distinct
     * lines always conflict) and the checker's ControlledNetwork is
     * installed by CheckWorld via MachineConfig::makeNetwork.
     */
    MachineConfig machineConfig() const;

    /** The line addresses the scripts touch, homed round-robin. */
    std::vector<Addr> lineSet(const AddressMap &amap) const;

    /** Per-node operation lists. */
    std::vector<std::vector<MemOp>> buildScript(const AddressMap &amap) const;
};

} // namespace limitless

#endif // LIMITLESS_CHECK_CHECK_CONFIG_HH
