/**
 * @file
 * The checker's unit of nondeterminism. A run of the real machine is
 * fully determined by its choice schedule: at each step the checker
 * either delivers the head packet of one (src, dest) network channel or
 * issues the next scripted operation on an idle node, then lets the
 * event queue drain completely. Channels are FIFO — the protocol relies
 * on point-to-point ordering (see src/network/network.hh) — so only
 * *inter*-channel reorderings are explored.
 */

#ifndef LIMITLESS_CHECK_CHOICE_HH
#define LIMITLESS_CHECK_CHOICE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "proto/opcode.hh"
#include "sim/types.hh"

namespace limitless
{

/** One scheduling decision. */
struct Choice
{
    enum class Kind : std::uint8_t
    {
        issue,   ///< start the issuing node's next scripted MemOp
        deliver, ///< deliver the head packet of channel (src, node)
    };

    Kind kind = Kind::issue;
    NodeId node = 0; ///< issue: the issuing node; deliver: destination
    NodeId src = 0;  ///< deliver only: channel source

    /** Annotations (head packet at enumeration time): not needed to
     *  re-apply the choice, but kept for readable traces. */
    Opcode opcode = Opcode::RREQ;
    Addr line = 0;
};

using Schedule = std::vector<Choice>;

std::string describeChoice(const Choice &c);

} // namespace limitless

#endif // LIMITLESS_CHECK_CHOICE_HH
