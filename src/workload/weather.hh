/**
 * @file
 * Weather-forecasting workload (paper Figures 8-10).
 *
 * Synthetic stand-in for the Pat Teller weather trace, reproducing the
 * three sharing properties the paper's evaluation hinges on:
 *
 *  1. one *hot* variable, initialized by processor 0 and re-read by every
 *     processor each outer iteration (worker-set = N). When it is not
 *     flagged read-only ("unoptimized"), limited directories thrash on it
 *     (Figure 8) while LimitLESS absorbs it with a bounded number of
 *     overflow traps;
 *  2. pairwise boundary variables with a worker-set of exactly two,
 *     deliberately homed on a third node — the variables that make
 *     LimitLESS1 "especially bad" (Figure 10);
 *  3. regional variables shared by groups of four processors, re-written
 *     every iteration, exercising recurring overflows for p < 4;
 *  plus private column work and combining-tree barriers.
 */

#ifndef LIMITLESS_WORKLOAD_WEATHER_HH
#define LIMITLESS_WORKLOAD_WEATHER_HH

#include <memory>
#include <vector>

#include "workload/barrier.hh"
#include "workload/workload.hh"

namespace limitless
{

/** Weather knobs. */
struct WeatherParams
{
    unsigned iterations = 25;
    unsigned columnLines = 24;  ///< private per-iteration column work
    Tick computePerLine = 2;
    unsigned regionSize = 4;    ///< processors per regional variable
    /**
     * Paper Section 5.2: "if this variable is flagged as read-only data,
     * then a limited directory performs just as well". Optimized mode
     * models the flag by reading the hot variable once at startup.
     */
    bool optimizeHotVariable = false;
    unsigned barrierFanIn = 2;
};

/** See file comment. */
class Weather : public Workload
{
  public:
    explicit Weather(WeatherParams p = {}) : _p(p) {}

    std::string name() const override
    {
        return _p.optimizeHotVariable ? "weather(opt)" : "weather";
    }

    void install(Machine &m) override;
    void verify(Machine &m) const override;

  private:
    Task<> worker(ThreadApi &t, Machine &m, unsigned p);

    Addr hotAddr(const AddressMap &amap) const
    {
        return amap.addrOnNode(0, slot::data);
    }

    /** Boundary of proc p, homed on an uninvolved third node. */
    Addr
    pairAddr(const AddressMap &amap, unsigned p, unsigned procs) const
    {
        return amap.addrOnNode((p + procs / 2) % procs, slot::data + 1);
    }

    /** Regional variable r, homed outside its region. */
    Addr
    regionAddr(const AddressMap &amap, unsigned r, unsigned procs) const
    {
        return amap.addrOnNode((r * _p.regionSize + _p.regionSize) % procs,
                               slot::data + 2);
    }

    Addr
    columnAddr(const AddressMap &amap, unsigned p, unsigned k) const
    {
        return amap.addrOnNode(p, slot::data + 3 + k);
    }

    static std::uint64_t
    pairValue(unsigned p, unsigned iter)
    {
        return (static_cast<std::uint64_t>(p) << 32) ^ (iter * 257);
    }

    static std::uint64_t
    regionValue(unsigned r, unsigned iter)
    {
        return (static_cast<std::uint64_t>(r) << 32) ^ (iter * 769 + 5);
    }

    static constexpr std::uint64_t hotValue = 42;

    WeatherParams _p;
    std::unique_ptr<CombiningTreeBarrier> _barrier;
    std::vector<std::uint64_t> _errors;
    std::vector<std::uint64_t> _hotReads;
};

} // namespace limitless

#endif // LIMITLESS_WORKLOAD_WEATHER_HH
