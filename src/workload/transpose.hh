/**
 * @file
 * Matrix-transpose workload: an all-to-all communication pattern.
 *
 * Phase 1: every processor writes its row of tiles. Phase 2 (after a
 * barrier): every processor gathers one tile from every other processor
 * (the column of the transposed matrix) and writes it back into its own
 * rows. Each tile has a worker-set of exactly two, so no directory
 * scheme is stressed — what is stressed is the *fabric*: N^2 remote
 * reads criss-cross the mesh each round, the dual of Weather's
 * single-node hot spot. Used by the applications bench to show the
 * protocols agree when the network, not the directory, is the
 * bottleneck.
 */

#ifndef LIMITLESS_WORKLOAD_TRANSPOSE_HH
#define LIMITLESS_WORKLOAD_TRANSPOSE_HH

#include <memory>
#include <vector>

#include "workload/barrier.hh"
#include "workload/workload.hh"

namespace limitless
{

/** Transpose knobs. */
struct TransposeParams
{
    unsigned rounds = 4;
    unsigned wordsPerTile = 2; ///< payload per (i,j) tile
    Tick computePerTile = 3;
    unsigned barrierFanIn = 2;
};

/** See file comment. */
class Transpose : public Workload
{
  public:
    explicit Transpose(TransposeParams p = {}) : _p(p) {}

    std::string name() const override { return "transpose"; }
    void install(Machine &m) override;
    void verify(Machine &m) const override;

  private:
    Task<> worker(ThreadApi &t, Machine &m, unsigned p);

    /** Source tile (i, j): row i's data for column j, homed at i. */
    Addr
    tileAddr(const AddressMap &amap, unsigned i, unsigned j,
             unsigned w) const
    {
        return amap.addrOnNode(
            i, slot::data + (j * _p.wordsPerTile + w) * 2);
    }

    /** Destination tile (j, i) in the transposed matrix, homed at j. */
    Addr
    outAddr(const AddressMap &amap, unsigned j, unsigned i,
            unsigned w) const
    {
        return amap.addrOnNode(
            j, slot::data + 1 + (i * _p.wordsPerTile + w) * 2);
    }

    static std::uint64_t
    value(unsigned i, unsigned j, unsigned w, unsigned round)
    {
        return (static_cast<std::uint64_t>(i) << 40) ^
               (static_cast<std::uint64_t>(j) << 20) ^ (w * 7919) ^
               (round * 104729);
    }

    TransposeParams _p;
    std::unique_ptr<CombiningTreeBarrier> _barrier;
    std::vector<std::uint64_t> _errors;
};

} // namespace limitless

#endif // LIMITLESS_WORKLOAD_TRANSPOSE_HH
