/**
 * @file
 * Migratory-object workload: a multi-line object travels processor to
 * processor around a token ring, each holder read-modify-writing every
 * line. Exercises the Read-Write ownership transitions (paper Table 2
 * rows 4-6), REPM/INV crossings, and motivates the Section 6 FIFO
 * directory-eviction extension for migrating data.
 */

#ifndef LIMITLESS_WORKLOAD_MIGRATORY_HH
#define LIMITLESS_WORKLOAD_MIGRATORY_HH

#include <vector>

#include "workload/workload.hh"

namespace limitless
{

/** Migratory knobs. */
struct MigratoryParams
{
    unsigned rounds = 4;      ///< full trips around the ring
    unsigned objectLines = 4; ///< lines in the migrating object
    Tick computePerLine = 3;
    Tick pollDelay = 8;       ///< spin pacing on the token flag
};

/** See file comment. */
class Migratory : public Workload
{
  public:
    explicit Migratory(MigratoryParams p = {}) : _p(p) {}

    std::string name() const override { return "migratory"; }
    void install(Machine &m) override;
    void verify(Machine &m) const override;

  private:
    Task<> worker(ThreadApi &t, Machine &m, unsigned p);

    Addr
    objectAddr(const AddressMap &amap, unsigned k) const
    {
        return amap.addrOnNode(0, slot::data + k);
    }

    /** Token flag for proc p, homed at p (its spin target is local). */
    Addr
    tokenAddr(const AddressMap &amap, unsigned p) const
    {
        return amap.addrOnNode(p, slot::data + _p.objectLines);
    }

    MigratoryParams _p;
    std::vector<std::uint64_t> _errors;
};

} // namespace limitless

#endif // LIMITLESS_WORKLOAD_MIGRATORY_HH
