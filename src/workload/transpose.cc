#include "workload/transpose.hh"

#include "sim/log.hh"

namespace limitless
{

void
Transpose::install(Machine &m)
{
    const unsigned procs = m.numNodes();
    _barrier = std::make_unique<CombiningTreeBarrier>(
        m.addressMap(), procs, _p.barrierFanIn, slot::barrier);
    _errors.assign(procs, 0);
    for (unsigned p = 0; p < procs; ++p) {
        m.spawnOn(p, [this, &m, p](ThreadApi &t) {
            return worker(t, m, p);
        });
    }
}

Task<>
Transpose::worker(ThreadApi &t, Machine &m, unsigned p)
{
    const AddressMap &amap = m.addressMap();
    const unsigned procs = m.numNodes();

    for (unsigned round = 1; round <= _p.rounds; ++round) {
        // Phase 1: publish this row's tiles.
        for (unsigned j = 0; j < procs; ++j)
            for (unsigned w = 0; w < _p.wordsPerTile; ++w)
                co_await t.write(tileAddr(amap, p, j, w),
                                 value(p, j, w, round));
        co_await _barrier->wait(t, p);

        // Phase 2: gather column p from every row (all-to-all), starting
        // from a different row per processor so the traffic spreads.
        for (unsigned k = 0; k < procs; ++k) {
            const unsigned i = (p + k) % procs;
            for (unsigned w = 0; w < _p.wordsPerTile; ++w) {
                const std::uint64_t v =
                    co_await t.read(tileAddr(amap, i, p, w));
                if (v != value(i, p, w, round))
                    ++_errors[p];
                co_await t.write(outAddr(amap, p, i, w), v);
            }
            co_await t.compute(_p.computePerTile);
        }
        co_await _barrier->wait(t, p);
    }
}

void
Transpose::verify(Machine &m) const
{
    const AddressMap &amap = m.addressMap();
    const unsigned procs = m.numNodes();
    for (unsigned p = 0; p < procs; ++p) {
        if (_errors[p])
            panic("transpose: proc %u observed %llu stale tiles", p,
                  (unsigned long long)_errors[p]);
    }
    // Spot-check the transposed matrix: out(j, i) == value(i, j).
    for (unsigned j = 0; j < procs; j += 3) {
        for (unsigned i = 0; i < procs; i += 5) {
            const Addr a = outAddr(amap, j, i, 0);
            const Addr line = amap.lineAddr(a);
            std::uint64_t v = 0;
            bool found = false;
            for (unsigned q = 0; q < procs && !found; ++q) {
                const CacheLine *cl =
                    m.node(q).cache().array().lookup(line);
                if (cl && cl->state == CacheState::readWrite) {
                    v = cl->words[amap.wordOf(a)];
                    found = true;
                }
            }
            if (!found)
                v = m.node(amap.homeOf(a))
                        .mem()
                        .readLine(line)[amap.wordOf(a)];
            if (v != value(i, j, 0, _p.rounds))
                panic("transpose: out(%u,%u) is %llu, expected %llu", j,
                      i, (unsigned long long)v,
                      (unsigned long long)value(i, j, 0, _p.rounds));
        }
    }
}

} // namespace limitless
