/**
 * @file
 * Software combining-tree barrier (paper Section 5.2: Weather "uses
 * software combining trees to distribute its barrier synchronization
 * variables").
 *
 * Arrival: each processor fetch-adds its leaf group's counter; the last
 * arriver at a tree node recursively arrives at the parent. Release: the
 * root winner writes the root release flag; every winner that was
 * spinning below releases the flags on the sub-path it won, cascading the
 * wakeup down the tree. Counters are monotonic (target = generation *
 * expected), avoiding reset races. Every flag has a worker-set of at most
 * fan-in processors, which is the whole point: barriers stay friendly to
 * limited directories.
 */

#ifndef LIMITLESS_WORKLOAD_BARRIER_HH
#define LIMITLESS_WORKLOAD_BARRIER_HH

#include <vector>

#include "machine/address_map.hh"
#include "proc/processor.hh"
#include "sim/task.hh"

namespace limitless
{

/** Reusable combining-tree barrier over simulated shared memory. */
class CombiningTreeBarrier
{
  public:
    /**
     * @param amap       machine address map (for variable placement)
     * @param procs      number of participants (thread p calls wait(p))
     * @param fan_in     tree arity
     * @param slot_base  address-slot region for the tree's variables
     */
    CombiningTreeBarrier(const AddressMap &amap, unsigned procs,
                         unsigned fan_in = 2,
                         std::uint64_t slot_base = 0x1025);

    /** Block thread @p who until all participants arrive. */
    Task<> wait(ThreadApi &t, unsigned who);

    /** Completed episodes for participant @p who (host-side). */
    std::uint64_t episodes(unsigned who) const { return _gen.at(who); }

    unsigned treeNodes() const { return _nodes.size(); }
    Tick spinDelay = 6; ///< compute cycles between spin reads

  private:
    struct TreeNode
    {
        Addr counter;
        Addr flag;
        int parent;        ///< index, -1 for root
        unsigned expected; ///< arrivals per episode
    };

    std::vector<TreeNode> _nodes;
    std::vector<unsigned> _leafOf;      ///< proc -> leaf node index
    std::vector<std::uint64_t> _gen;    ///< per-proc episode count
};

} // namespace limitless

#endif // LIMITLESS_WORKLOAD_BARRIER_HH
