/**
 * @file
 * Hot-spot microbenchmark used to validate the Section 3.1 analytic model
 * T = Th + m * Ts: processors mix wide-shared reads (which overflow the
 * pointer array) with private work, letting the experiment sweep the
 * overflow fraction m directly.
 */

#ifndef LIMITLESS_WORKLOAD_HOTSPOT_HH
#define LIMITLESS_WORKLOAD_HOTSPOT_HH

#include <memory>
#include <vector>

#include "workload/barrier.hh"
#include "workload/workload.hh"

namespace limitless
{

/** Hot-spot knobs. */
struct HotspotParams
{
    unsigned iterations = 20;
    unsigned hotLines = 4;    ///< wide-shared lines (worker-set = N)
    unsigned privLines = 16;  ///< private lines touched per iteration
    /** Re-dirty the hot lines every this many iterations so the
     *  worker-sets rebuild (0 = never: one-time overflow only). */
    unsigned writePeriod = 1;
    Tick computePerOp = 2;
    /** Max per-processor phase offset applied after each barrier, to
     *  de-burst arrivals at the hot home (model-validation use). */
    Tick staggerCycles = 0;
    unsigned barrierFanIn = 2;
};

/** See file comment. */
class Hotspot : public Workload
{
  public:
    explicit Hotspot(HotspotParams p = {}) : _p(p) {}

    std::string name() const override { return "hotspot"; }
    void install(Machine &m) override;
    void verify(Machine &m) const override;

  private:
    Task<> worker(ThreadApi &t, Machine &m, unsigned p);

    /** Hot line k, homed round-robin so network hot-spotting does not
     *  confound the latency model being validated. */
    Addr
    hotAddr(const AddressMap &amap, unsigned k, unsigned procs) const
    {
        return amap.addrOnNode((k * 7 + 3) % procs, slot::data);
    }

    Addr
    privAddr(const AddressMap &amap, unsigned p, unsigned k) const
    {
        return amap.addrOnNode(p, slot::data + 1 + k);
    }

    static std::uint64_t
    hotValue(unsigned k, unsigned epoch)
    {
        return (static_cast<std::uint64_t>(k) << 32) ^ (epoch * 97 + 11);
    }

    HotspotParams _p;
    std::unique_ptr<CombiningTreeBarrier> _barrier;
    std::vector<std::uint64_t> _errors;
};

} // namespace limitless

#endif // LIMITLESS_WORKLOAD_HOTSPOT_HH
