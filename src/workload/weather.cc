#include "workload/weather.hh"

#include "sim/log.hh"

namespace limitless
{

void
Weather::install(Machine &m)
{
    const unsigned procs = m.numNodes();
    _barrier = std::make_unique<CombiningTreeBarrier>(
        m.addressMap(), procs, _p.barrierFanIn, slot::barrier);
    _errors.assign(procs, 0);
    _hotReads.assign(procs, 0);
    for (unsigned p = 0; p < procs; ++p) {
        m.spawnOn(p, [this, &m, p](ThreadApi &t) {
            return worker(t, m, p);
        });
    }
}

Task<>
Weather::worker(ThreadApi &t, Machine &m, unsigned p)
{
    const AddressMap &amap = m.addressMap();
    const unsigned procs = m.numNodes();
    const unsigned region = p / _p.regionSize;
    const unsigned leader = region * _p.regionSize;
    const unsigned prev = (p + procs - 1) % procs;

    // Initialization: processor 0 sets up the hot simulation parameter.
    if (p == 0)
        co_await t.write(hotAddr(amap), hotValue);
    co_await _barrier->wait(t, p);

    // Optimized mode ("flagged read-only"): fetch once, never again.
    if (_p.optimizeHotVariable) {
        const std::uint64_t v = co_await t.read(hotAddr(amap));
        ++_hotReads[p];
        if (v != hotValue)
            ++_errors[p];
    }

    for (unsigned iter = 1; iter <= _p.iterations; ++iter) {
        // (1) hot variable: every processor consults the shared
        // simulation parameter each timestep.
        if (!_p.optimizeHotVariable) {
            const std::uint64_t v = co_await t.read(hotAddr(amap));
            ++_hotReads[p];
            if (v != hotValue)
                ++_errors[p];
        }

        // (2) pairwise boundary exchange (worker-set exactly 2).
        co_await t.write(pairAddr(amap, p, procs), pairValue(p, iter));
        // (3) regional variable (worker-set = regionSize).
        if (p == leader)
            co_await t.write(regionAddr(amap, region, procs),
                             regionValue(region, iter));
        co_await _barrier->wait(t, p);

        const std::uint64_t bv =
            co_await t.read(pairAddr(amap, prev, procs));
        if (bv != pairValue(prev, iter))
            ++_errors[p];
        const std::uint64_t rv =
            co_await t.read(regionAddr(amap, region, procs));
        if (rv != regionValue(region, iter))
            ++_errors[p];

        // (4) private column work (cache-resident after iteration 1).
        for (unsigned k = 0; k < _p.columnLines; ++k) {
            const Addr a = columnAddr(amap, p, k);
            const std::uint64_t v = co_await t.read(a);
            co_await t.compute(_p.computePerLine);
            co_await t.write(a, v + 1);
        }
        co_await _barrier->wait(t, p);
    }
}

void
Weather::verify(Machine &m) const
{
    for (unsigned p = 0; p < m.numNodes(); ++p) {
        if (_errors[p])
            panic("weather: proc %u observed %llu wrong values", p,
                  (unsigned long long)_errors[p]);
        const std::uint64_t expected_hot =
            _p.optimizeHotVariable ? 1 : _p.iterations;
        if (_hotReads[p] != expected_hot)
            panic("weather: proc %u read the hot variable %llu times, "
                  "expected %llu",
                  p, (unsigned long long)_hotReads[p],
                  (unsigned long long)expected_hot);
        if (_barrier->episodes(p) != 2 * _p.iterations + 1)
            panic("weather: proc %u completed %llu barrier episodes",
                  p, (unsigned long long)_barrier->episodes(p));
    }
}

} // namespace limitless
