#include "workload/multigrid.hh"

#include "sim/log.hh"

namespace limitless
{

namespace
{

/** Mesh direction encoding: 0=N 1=E 2=S 3=W. */
constexpr unsigned numDirs = 4;

/** Opposite direction (my north boundary is my north neighbour's south). */
unsigned
opposite(unsigned d)
{
    return (d + 2) % numDirs;
}

int
neighborOf(const MachineConfig &cfg, unsigned p, unsigned d)
{
    const unsigned w = cfg.resolvedMeshWidth();
    const unsigned h = cfg.resolvedMeshHeight();
    const unsigned x = p % w;
    const unsigned y = p / w;
    switch (d) {
      case 0: return y == 0 ? -1 : static_cast<int>(p - w);
      case 1: return x + 1 >= w ? -1 : static_cast<int>(p + 1);
      case 2: return y + 1 >= h ? -1 : static_cast<int>(p + w);
      case 3: return x == 0 ? -1 : static_cast<int>(p - 1);
      default: return -1;
    }
}

} // namespace

Addr
Multigrid::boundaryAddr(const AddressMap &amap, unsigned p, unsigned d,
                        unsigned j) const
{
    return amap.addrOnNode(static_cast<NodeId>(p),
                           slot::data + d * _p.boundaryWords + j);
}

Addr
Multigrid::interiorAddr(const AddressMap &amap, unsigned p,
                        unsigned k) const
{
    return amap.addrOnNode(static_cast<NodeId>(p),
                           slot::data + numDirs * _p.boundaryWords + k);
}

void
Multigrid::install(Machine &m)
{
    const unsigned procs = m.numNodes();
    _barrier = std::make_unique<CombiningTreeBarrier>(
        m.addressMap(), procs, _p.barrierFanIn, slot::barrier);
    _errors.assign(procs, 0);
    _reads.assign(procs, 0);
    for (unsigned p = 0; p < procs; ++p) {
        m.spawnOn(p, [this, &m, p](ThreadApi &t) {
            return worker(t, m, p);
        });
    }
}

Task<>
Multigrid::worker(ThreadApi &t, Machine &m, unsigned p)
{
    const AddressMap &amap = m.addressMap();
    const MachineConfig &cfg = m.config();

    for (unsigned iter = 1; iter <= _p.iterations; ++iter) {
        // Publish this iteration's boundary values.
        for (unsigned d = 0; d < numDirs; ++d) {
            if (neighborOf(cfg, p, d) < 0)
                continue;
            for (unsigned j = 0; j < _p.boundaryWords; ++j) {
                co_await t.write(boundaryAddr(amap, p, d, j),
                                 expectedValue(p, iter, d, j));
            }
        }
        co_await _barrier->wait(t, p);

        // Read each neighbour's facing boundary and relax the interior.
        for (unsigned d = 0; d < numDirs; ++d) {
            const int q = neighborOf(cfg, p, d);
            if (q < 0)
                continue;
            const unsigned facing = opposite(d);
            for (unsigned j = 0; j < _p.boundaryWords; ++j) {
                const std::uint64_t v = co_await t.read(
                    boundaryAddr(amap, q, facing, j));
                ++_reads[p];
                if (v != expectedValue(q, iter, facing, j))
                    ++_errors[p];
                co_await t.compute(_p.computePerPoint);
            }
        }
        for (unsigned k = 0; k < _p.interiorLines; ++k) {
            const Addr a = interiorAddr(amap, p, k);
            const std::uint64_t v = co_await t.read(a);
            co_await t.compute(_p.computePerPoint);
            co_await t.write(a, v + 1);
        }
        co_await _barrier->wait(t, p);
    }
}

void
Multigrid::verify(Machine &m) const
{
    for (unsigned p = 0; p < m.numNodes(); ++p) {
        if (_errors[p])
            panic("multigrid: proc %u observed %llu stale boundary reads",
                  p, (unsigned long long)_errors[p]);
        if (_barrier->episodes(p) != 2 * _p.iterations)
            panic("multigrid: proc %u completed %llu barrier episodes, "
                  "expected %u",
                  p, (unsigned long long)_barrier->episodes(p),
                  2 * _p.iterations);
    }
    // Interior relaxation ran to completion: each interior word counted
    // every iteration.
    Machine &mm = m;
    for (unsigned p = 0; p < m.numNodes(); ++p) {
        for (unsigned k = 0; k < _p.interiorLines; ++k) {
            const Addr a = interiorAddr(m.addressMap(), p, k);
            const NodeId home = m.addressMap().homeOf(a);
            // The final value may still live dirty in p's cache.
            const CacheLine *cl = mm.node(p).cache().array().lookup(
                m.addressMap().lineAddr(a));
            std::uint64_t v;
            if (cl && cl->state == CacheState::readWrite)
                v = cl->words[m.addressMap().wordOf(a)];
            else
                v = mm.node(home).mem().readLine(
                    m.addressMap().lineAddr(a))[m.addressMap().wordOf(a)];
            if (v != _p.iterations)
                panic("multigrid: interior word (%u,%u) is %llu, expected "
                      "%u", p, k, (unsigned long long)v, _p.iterations);
        }
    }
}

} // namespace limitless
