#include "workload/migratory.hh"

#include "sim/log.hh"

namespace limitless
{

void
Migratory::install(Machine &m)
{
    const unsigned procs = m.numNodes();
    _errors.assign(procs, 0);
    for (unsigned p = 0; p < procs; ++p) {
        m.spawnOn(p, [this, &m, p](ThreadApi &t) {
            return worker(t, m, p);
        });
    }
}

Task<>
Migratory::worker(ThreadApi &t, Machine &m, unsigned p)
{
    const AddressMap &amap = m.addressMap();
    const unsigned procs = m.numNodes();
    const unsigned next = (p + 1) % procs;

    // The token takes the value `round` when handed to proc 0, and the
    // same value as it passes down the ring. Proc 0 starts round 1.
    for (unsigned round = 1; round <= _p.rounds; ++round) {
        if (p == 0 && round == 1) {
            // Seed the very first token.
        } else {
            // Wait for the token.
            for (;;) {
                const std::uint64_t v =
                    co_await t.read(tokenAddr(amap, p));
                if (v >= round)
                    break;
                co_await t.compute(_p.pollDelay);
            }
        }

        // Hold the object: fetch-add every line.
        for (unsigned k = 0; k < _p.objectLines; ++k) {
            co_await t.fetchAdd(objectAddr(amap, k), 1);
            co_await t.compute(_p.computePerLine);
        }

        // Pass the token along. The wrap back to proc 0 starts the next
        // round.
        const unsigned nr = next == 0 ? round + 1 : round;
        if (!(next == 0 && round == _p.rounds))
            co_await t.write(tokenAddr(amap, next), nr);
    }
}

void
Migratory::verify(Machine &m) const
{
    const AddressMap &amap = m.addressMap();
    const unsigned procs = m.numNodes();
    for (unsigned k = 0; k < _p.objectLines; ++k) {
        const Addr a = objectAddr(amap, k);
        const Addr line = amap.lineAddr(a);
        // The final value may still be dirty in some cache.
        std::uint64_t v = 0;
        bool found = false;
        for (unsigned p = 0; p < procs && !found; ++p) {
            const CacheLine *cl = m.node(p).cache().array().lookup(line);
            if (cl && cl->state == CacheState::readWrite) {
                v = cl->words[amap.wordOf(a)];
                found = true;
            }
        }
        if (!found)
            v = m.node(amap.homeOf(a)).mem().readLine(line)[amap.wordOf(a)];
        const std::uint64_t expected =
            static_cast<std::uint64_t>(procs) * _p.rounds;
        if (v != expected)
            panic("migratory: object line %u ended at %llu, expected %llu",
                  k, (unsigned long long)v, (unsigned long long)expected);
    }
}

} // namespace limitless
