/**
 * @file
 * Workload abstraction: a Workload spawns one thread program per node
 * (written as coroutines over ThreadApi) and can verify results after a
 * run — every workload computes checkable values, so protocol bugs show
 * up as wrong data, not just odd timing.
 *
 * Address-space convention: workloads place shared variables with
 * AddressMap::addrOnNode(home, slot). Slot ranges are partitioned so a
 * workload and its barrier never collide:
 *   0x0000 - 0x0FFF   workload data
 *   0x1025 -          barrier tree
 *   0x2037 -          locks and auxiliary structures
 *
 * The odd, non-power-of-two bases matter: with a direct-mapped cache the
 * set index is (slot * numNodes + home) mod numSets, so a power-of-two
 * barrier base would alias the barrier tree's hottest lines onto the
 * workloads' slot-0 hot lines in every cache, and the resulting conflict
 * evictions would distort every figure. Odd bases (and the counter/flag
 * stride of 2) keep the heavily contended structures in disjoint sets.
 */

#ifndef LIMITLESS_WORKLOAD_WORKLOAD_HH
#define LIMITLESS_WORKLOAD_WORKLOAD_HH

#include <string>

#include "machine/machine.hh"

namespace limitless
{

/** Slot-range bases (see file comment). */
namespace slot
{
    inline constexpr std::uint64_t data = 0x0000;
    inline constexpr std::uint64_t barrier = 0x1025;
    inline constexpr std::uint64_t locks = 0x2037;
}

/** A parallel program that runs on a Machine. */
class Workload
{
  public:
    virtual ~Workload() = default;

    virtual std::string name() const = 0;

    /** Spawn thread programs onto the machine (before Machine::run). */
    virtual void install(Machine &m) = 0;

    /**
     * Post-run validation; aborts (via panic) on any data error.
     * Workloads accumulate error counts while running and check them
     * plus final memory contents here.
     */
    virtual void verify(Machine &m) const = 0;
};

} // namespace limitless

#endif // LIMITLESS_WORKLOAD_WORKLOAD_HH
