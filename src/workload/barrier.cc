#include "workload/barrier.hh"

#include <cassert>

#include "trace/trace.hh"

namespace limitless
{

CombiningTreeBarrier::CombiningTreeBarrier(const AddressMap &amap,
                                           unsigned procs, unsigned fan_in,
                                           std::uint64_t slot_base)
    : _leafOf(procs), _gen(procs, 0)
{
    assert(procs >= 1 && fan_in >= 2);

    // Build the tree level by level, leaves first. `members` tracks, for
    // each node of the current level, a representative participant whose
    // home node hosts the tree node's variables (locality: the barrier
    // counter lives near its group's first member).
    struct Pending
    {
        unsigned representative;
        int index;
    };

    std::vector<Pending> level;
    const unsigned leaves = (procs + fan_in - 1) / fan_in;
    for (unsigned g = 0; g < leaves; ++g) {
        const unsigned lo = g * fan_in;
        const unsigned hi = std::min(procs, lo + fan_in);
        const unsigned idx = _nodes.size();
        const NodeId home = static_cast<NodeId>(lo % procs);
        _nodes.push_back(TreeNode{
            amap.addrOnNode(home, slot_base + 2 * idx),
            amap.addrOnNode(home, slot_base + 2 * idx + 1),
            -1,
            hi - lo,
        });
        for (unsigned p = lo; p < hi; ++p)
            _leafOf[p] = idx;
        level.push_back(Pending{lo, static_cast<int>(idx)});
    }

    while (level.size() > 1) {
        std::vector<Pending> next;
        for (unsigned g = 0; g * fan_in < level.size(); ++g) {
            const unsigned lo = g * fan_in;
            const unsigned hi =
                std::min<unsigned>(level.size(), lo + fan_in);
            const unsigned idx = _nodes.size();
            const NodeId home =
                static_cast<NodeId>(level[lo].representative % procs);
            _nodes.push_back(TreeNode{
                amap.addrOnNode(home, slot_base + 2 * idx),
                amap.addrOnNode(home, slot_base + 2 * idx + 1),
                -1,
                hi - lo,
            });
            for (unsigned k = lo; k < hi; ++k)
                _nodes[level[k].index].parent = static_cast<int>(idx);
            next.push_back(Pending{level[lo].representative,
                                   static_cast<int>(idx)});
        }
        level = std::move(next);
    }
    // level[0] is the root; parent stays -1.
}

Task<>
CombiningTreeBarrier::wait(ThreadApi &t, unsigned who)
{
    const std::uint64_t gen = ++_gen.at(who);
    // Mark the episode boundary for trace capture: the barrier's
    // internal spins are timing-dependent and are re-synthesized live on
    // replay (the paper's post-mortem scheduling approach).
    t.annotate(trace_tag::barrierEnter);

    // Arrival phase: climb while we are the last arriver.
    std::vector<unsigned> won; // nodes whose release we now own
    unsigned node = _leafOf[who];
    int lost_at = -1;
    for (;;) {
        const std::uint64_t old =
            co_await t.fetchAdd(_nodes[node].counter, 1);
        if (old + 1 ==
            gen * static_cast<std::uint64_t>(_nodes[node].expected)) {
            won.push_back(node);
            if (_nodes[node].parent < 0)
                break; // root winner: everyone has arrived
            node = static_cast<unsigned>(_nodes[node].parent);
            continue;
        }
        lost_at = static_cast<int>(node);
        break;
    }

    // Wait phase: spin on the flag of the node where we stopped.
    if (lost_at >= 0) {
        for (;;) {
            const std::uint64_t flag =
                co_await t.read(_nodes[lost_at].flag);
            if (flag >= gen)
                break;
            co_await t.compute(spinDelay);
        }
    }

    // Release phase: cascade the wakeup down the sub-path we won,
    // topmost node first.
    for (auto it = won.rbegin(); it != won.rend(); ++it)
        co_await t.write(_nodes[*it].flag, gen);
    t.annotate(trace_tag::barrierExit);
}

} // namespace limitless
