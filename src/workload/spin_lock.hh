/**
 * @file
 * Test-and-test-and-set spin lock with exponential backoff, built on the
 * atomic swap primitive. Used by workloads and by the Section 6
 * FIFO-lock comparison.
 */

#ifndef LIMITLESS_WORKLOAD_SPIN_LOCK_HH
#define LIMITLESS_WORKLOAD_SPIN_LOCK_HH

#include "proc/processor.hh"
#include "sim/task.hh"

namespace limitless
{

/** A spin lock living at one shared-memory word. */
class SpinLock
{
  public:
    explicit SpinLock(Addr lock_word) : _addr(lock_word) {}

    Addr address() const { return _addr; }

    /** Acquire: spins (cached) and retries with backoff. */
    Task<>
    acquire(ThreadApi &t)
    {
        Tick backoff = 8;
        for (;;) {
            if ((co_await t.swap(_addr, 1)) == 0)
                co_return;
            // Spin on a cached copy until the lock looks free.
            while ((co_await t.read(_addr)) != 0)
                co_await t.compute(backoff);
            backoff = std::min<Tick>(backoff * 2, 256);
        }
    }

    Task<>
    release(ThreadApi &t)
    {
        co_await t.write(_addr, 0);
    }

  private:
    Addr _addr;
};

} // namespace limitless

#endif // LIMITLESS_WORKLOAD_SPIN_LOCK_HH
