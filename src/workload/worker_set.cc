#include "workload/worker_set.hh"

#include <numeric>

#include "sim/log.hh"

namespace limitless
{

void
WorkerSetSweep::install(Machine &m)
{
    const unsigned procs = m.numNodes();
    if (_p.workerSet + 1 > procs)
        fatal("worker-set sweep: need workerSet + 1 <= numNodes");
    _barrier = std::make_unique<CombiningTreeBarrier>(
        m.addressMap(), procs, _p.barrierFanIn, slot::barrier);
    _errors.assign(procs, 0);
    _writeLat.clear();
    _writeLat.reserve(_p.rounds);

    // Readers are procs 1..w; the writer is the last proc (so it is never
    // the home node and never a reader); everyone else idles at the
    // barrier so the machine-wide barrier stays correct.
    for (unsigned p = 0; p < procs; ++p) {
        if (p >= 1 && p <= _p.workerSet) {
            m.spawnOn(p, [this, &m, p](ThreadApi &t) {
                return reader(t, m, p);
            });
        } else if (p == procs - 1) {
            m.spawnOn(p, [this, &m, p](ThreadApi &t) {
                return writer(t, m, p);
            });
        } else {
            m.spawnOn(p, [this, &m, p](ThreadApi &t) {
                return idler(t, m, p);
            });
        }
    }
}

Task<>
WorkerSetSweep::reader(ThreadApi &t, Machine &m, unsigned p)
{
    const Addr a = sharedAddr(m.addressMap());
    for (unsigned r = 1; r <= _p.rounds; ++r) {
        const std::uint64_t v = co_await t.read(a);
        if (v != r - 1)
            ++_errors[p];
        co_await _barrier->wait(t, p);
        // Writer updates between the barriers.
        co_await _barrier->wait(t, p);
    }
}

Task<>
WorkerSetSweep::writer(ThreadApi &t, Machine &m, unsigned p)
{
    const Addr a = sharedAddr(m.addressMap());
    for (unsigned r = 1; r <= _p.rounds; ++r) {
        co_await _barrier->wait(t, p);
        const Tick before = t.now();
        co_await t.write(a, r);
        _writeLat.push_back(t.now() - before);
        co_await _barrier->wait(t, p);
    }
}

Task<>
WorkerSetSweep::idler(ThreadApi &t, Machine &m, unsigned p)
{
    (void)m;
    for (unsigned r = 1; r <= _p.rounds; ++r) {
        co_await _barrier->wait(t, p);
        co_await _barrier->wait(t, p);
    }
}

double
WorkerSetSweep::meanWriteLatency() const
{
    if (_writeLat.empty())
        return 0.0;
    const Tick sum =
        std::accumulate(_writeLat.begin(), _writeLat.end(), Tick{0});
    return static_cast<double>(sum) / _writeLat.size();
}

void
WorkerSetSweep::verify(Machine &m) const
{
    for (unsigned p = 0; p < m.numNodes(); ++p) {
        if (_errors[p])
            panic("worker-set: proc %u observed %llu stale reads", p,
                  (unsigned long long)_errors[p]);
    }
    if (_writeLat.size() != _p.rounds)
        panic("worker-set: writer completed %zu rounds, expected %u",
              _writeLat.size(), _p.rounds);
}

} // namespace limitless
