/**
 * @file
 * Randomized stress workload for property testing.
 *
 * Each processor performs a seeded random mix of operations over a small
 * shared region:
 *  - fetch-adds on shared counter lines (host-side tallies make the final
 *    sums exactly checkable regardless of interleaving);
 *  - tagged writes to value lines (writer id + sequence number);
 *  - reads of value lines, asserting the value is zero or a well-formed
 *    tag some processor actually wrote (no torn / stale garbage).
 *
 * With every protocol under test this must both finish (no deadlock) and
 * verify — the workhorse of the cross-protocol property suite.
 */

#ifndef LIMITLESS_WORKLOAD_RANDOM_STRESS_HH
#define LIMITLESS_WORKLOAD_RANDOM_STRESS_HH

#include <atomic>
#include <vector>

#include "sim/rng.hh"
#include "workload/workload.hh"

namespace limitless
{

/** Random-stress knobs. */
struct RandomStressParams
{
    unsigned opsPerProc = 200;
    unsigned counterLines = 8;
    unsigned valueLines = 16;
    Tick maxCompute = 6;
    std::uint64_t seed = 12345;
};

/** See file comment. */
class RandomStress : public Workload
{
  public:
    explicit RandomStress(RandomStressParams p = {}) : _p(p) {}

    std::string name() const override { return "random-stress"; }
    void install(Machine &m) override;
    void verify(Machine &m) const override;

  private:
    Task<> worker(ThreadApi &t, Machine &m, unsigned p);

    Addr
    counterAddr(const AddressMap &amap, unsigned k, unsigned procs) const
    {
        // Distinct slot per counter: (home, slot) pairs stay unique even
        // on machines with fewer nodes than counters.
        return amap.addrOnNode((k * 5 + 1) % procs, slot::data + 2 * k);
    }

    Addr
    valueAddr(const AddressMap &amap, unsigned k, unsigned procs) const
    {
        return amap.addrOnNode((k * 3 + 2) % procs,
                               slot::data + 2 * k + 1);
    }

    static std::uint64_t
    tag(unsigned p, unsigned seq)
    {
        return 0xA000'0000'0000'0000ull |
               (static_cast<std::uint64_t>(p) << 32) | seq;
    }

    static bool
    validTag(std::uint64_t v, unsigned procs, unsigned max_seq)
    {
        if (v == 0)
            return true;
        if ((v >> 60) != 0xA)
            return false;
        const unsigned p = static_cast<unsigned>((v >> 32) & 0x0FFFFFFF);
        const unsigned seq = static_cast<unsigned>(v & 0xFFFFFFFF);
        return p < procs && seq <= max_seq;
    }

    RandomStressParams _p;
    /** Per-counter expected sums. Atomic because under --sim-threads the
     *  workers incrementing one counter can live on different partitions;
     *  relaxed fetch-adds commute, so the final sums stay exact. */
    std::vector<std::atomic<std::uint64_t>> _tallies;
    std::vector<std::uint64_t> _errors; ///< per-proc, single writer each
};

} // namespace limitless

#endif // LIMITLESS_WORKLOAD_RANDOM_STRESS_HH
