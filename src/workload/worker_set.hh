/**
 * @file
 * Worker-set sweep: w readers share one line, one (uninvolved) writer
 * invalidates it each round. Records the writer's observed write latency
 * so benches can plot invalidation latency against worker-set size — the
 * experiment that exposes the chained directory's sequential-invalidation
 * cost and the LimitLESS write-gather trap.
 */

#ifndef LIMITLESS_WORKLOAD_WORKER_SET_HH
#define LIMITLESS_WORKLOAD_WORKER_SET_HH

#include <memory>
#include <vector>

#include "workload/barrier.hh"
#include "workload/workload.hh"

namespace limitless
{

/** Worker-set sweep knobs. */
struct WorkerSetParams
{
    unsigned workerSet = 8; ///< number of readers
    unsigned rounds = 10;
    unsigned barrierFanIn = 2;
};

/** See file comment. */
class WorkerSetSweep : public Workload
{
  public:
    explicit WorkerSetSweep(WorkerSetParams p = {}) : _p(p) {}

    std::string name() const override { return "worker-set"; }
    void install(Machine &m) override;
    void verify(Machine &m) const override;

    /** Writer-observed latency of each invalidating write. */
    const std::vector<Tick> &writeLatencies() const { return _writeLat; }

    double meanWriteLatency() const;

  private:
    Task<> reader(ThreadApi &t, Machine &m, unsigned p);
    Task<> writer(ThreadApi &t, Machine &m, unsigned p);
    Task<> idler(ThreadApi &t, Machine &m, unsigned p);

    Addr
    sharedAddr(const AddressMap &amap) const
    {
        return amap.addrOnNode(0, slot::data);
    }

    WorkerSetParams _p;
    std::unique_ptr<CombiningTreeBarrier> _barrier;
    std::vector<std::uint64_t> _errors;
    std::vector<Tick> _writeLat;
};

} // namespace limitless

#endif // LIMITLESS_WORKLOAD_WORKER_SET_HH
