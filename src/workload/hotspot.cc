#include "workload/hotspot.hh"

#include "sim/log.hh"

namespace limitless
{

void
Hotspot::install(Machine &m)
{
    const unsigned procs = m.numNodes();
    _barrier = std::make_unique<CombiningTreeBarrier>(
        m.addressMap(), procs, _p.barrierFanIn, slot::barrier);
    _errors.assign(procs, 0);
    for (unsigned p = 0; p < procs; ++p) {
        m.spawnOn(p, [this, &m, p](ThreadApi &t) {
            return worker(t, m, p);
        });
    }
}

Task<>
Hotspot::worker(ThreadApi &t, Machine &m, unsigned p)
{
    const AddressMap &amap = m.addressMap();
    const unsigned procs = m.numNodes();

    // Epoch 0 values.
    if (p == 0) {
        for (unsigned k = 0; k < _p.hotLines; ++k)
            co_await t.write(hotAddr(amap, k, procs), hotValue(k, 0));
    }
    co_await _barrier->wait(t, p);

    unsigned epoch = 0;
    for (unsigned iter = 1; iter <= _p.iterations; ++iter) {
        if (_p.staggerCycles)
            co_await t.compute(1 + (p * 29 + iter * 7) % _p.staggerCycles);
        // Wide-shared reads: every processor touches every hot line.
        for (unsigned k = 0; k < _p.hotLines; ++k) {
            const std::uint64_t v =
                co_await t.read(hotAddr(amap, k, procs));
            if (v != hotValue(k, epoch))
                ++_errors[p];
            co_await t.compute(_p.computePerOp);
        }
        // Private work.
        for (unsigned k = 0; k < _p.privLines; ++k) {
            const Addr a = privAddr(amap, p, k);
            const std::uint64_t v = co_await t.read(a);
            co_await t.compute(_p.computePerOp);
            co_await t.write(a, v + 1);
        }
        co_await _barrier->wait(t, p);
        // Periodically re-dirty the hot lines so worker-sets rebuild.
        if (_p.writePeriod && iter % _p.writePeriod == 0 &&
            iter != _p.iterations) {
            ++epoch;
            if (p == 0) {
                for (unsigned k = 0; k < _p.hotLines; ++k)
                    co_await t.write(hotAddr(amap, k, procs),
                                     hotValue(k, epoch));
            }
            co_await _barrier->wait(t, p);
        }
    }
}

void
Hotspot::verify(Machine &m) const
{
    for (unsigned p = 0; p < m.numNodes(); ++p) {
        if (_errors[p])
            panic("hotspot: proc %u observed %llu wrong values", p,
                  (unsigned long long)_errors[p]);
    }
    (void)m;
}

} // namespace limitless
