/**
 * @file
 * Static multigrid relaxation workload (paper Figure 7).
 *
 * Each processor owns a sub-grid; every iteration it publishes its
 * boundary values, synchronizes, reads the boundaries of its mesh
 * neighbours, relaxes its interior, and synchronizes again. Every shared
 * boundary line is written by one processor and read by exactly one
 * neighbour (worker-set 2), so limited directories never thrash — the
 * property that makes Dir4NB, LimitLESS and full-map indistinguishable in
 * Figure 7.
 */

#ifndef LIMITLESS_WORKLOAD_MULTIGRID_HH
#define LIMITLESS_WORKLOAD_MULTIGRID_HH

#include <atomic>
#include <memory>
#include <vector>

#include "workload/barrier.hh"
#include "workload/workload.hh"

namespace limitless
{

/** Multigrid knobs. */
struct MultigridParams
{
    unsigned iterations = 10;
    unsigned boundaryWords = 2;  ///< lines shared with each neighbour
    unsigned interiorLines = 24; ///< private relaxation points
    Tick computePerPoint = 2;
    unsigned barrierFanIn = 2;
};

/** See file comment. */
class Multigrid : public Workload
{
  public:
    explicit Multigrid(MultigridParams p = {}) : _p(p) {}

    std::string name() const override { return "multigrid"; }
    void install(Machine &m) override;
    void verify(Machine &m) const override;

  private:
    Task<> worker(ThreadApi &t, Machine &m, unsigned p);

    /** Boundary word j that processor p publishes toward direction d. */
    Addr boundaryAddr(const AddressMap &amap, unsigned p, unsigned d,
                      unsigned j) const;
    Addr interiorAddr(const AddressMap &amap, unsigned p,
                      unsigned k) const;

    static std::uint64_t
    expectedValue(unsigned p, unsigned iter, unsigned d, unsigned j)
    {
        return (static_cast<std::uint64_t>(p) << 32) ^
               (static_cast<std::uint64_t>(iter) * 131 + d * 17 + j);
    }

    MultigridParams _p;
    std::unique_ptr<CombiningTreeBarrier> _barrier;
    std::vector<std::uint64_t> _errors;
    std::vector<std::uint64_t> _reads;
};

} // namespace limitless

#endif // LIMITLESS_WORKLOAD_MULTIGRID_HH
