#include "workload/random_stress.hh"

#include "hier/chip_home.hh"
#include "sim/log.hh"

namespace limitless
{

void
RandomStress::install(Machine &m)
{
    const unsigned procs = m.numNodes();
    _tallies = std::vector<std::atomic<std::uint64_t>>(_p.counterLines);
    _errors.assign(procs, 0);
    for (unsigned p = 0; p < procs; ++p) {
        m.spawnOn(p, [this, &m, p](ThreadApi &t) {
            return worker(t, m, p);
        });
    }
}

Task<>
RandomStress::worker(ThreadApi &t, Machine &m, unsigned p)
{
    const AddressMap &amap = m.addressMap();
    const unsigned procs = m.numNodes();
    Rng rng(_p.seed ^ (0x5eedull * (p + 1)));

    unsigned seq = 0;
    for (unsigned i = 0; i < _p.opsPerProc; ++i) {
        const std::uint64_t dice = rng.below(100);
        if (dice < 40) {
            const unsigned k =
                static_cast<unsigned>(rng.below(_p.counterLines));
            const std::uint64_t delta = 1 + rng.below(3);
            co_await t.fetchAdd(counterAddr(amap, k, procs), delta);
            _tallies[k].fetch_add(delta, std::memory_order_relaxed);
        } else if (dice < 70) {
            const unsigned k =
                static_cast<unsigned>(rng.below(_p.valueLines));
            co_await t.write(valueAddr(amap, k, procs), tag(p, ++seq));
        } else {
            const unsigned k =
                static_cast<unsigned>(rng.below(_p.valueLines));
            const std::uint64_t v =
                co_await t.read(valueAddr(amap, k, procs));
            if (!validTag(v, procs, _p.opsPerProc))
                ++_errors[p];
        }
        if (_p.maxCompute)
            co_await t.compute(rng.below(_p.maxCompute + 1));
    }
}

void
RandomStress::verify(Machine &m) const
{
    const AddressMap &amap = m.addressMap();
    const unsigned procs = m.numNodes();
    for (unsigned p = 0; p < procs; ++p) {
        if (_errors[p])
            panic("random-stress: proc %u observed %llu malformed values",
                  p, (unsigned long long)_errors[p]);
    }
    for (unsigned k = 0; k < _p.counterLines; ++k) {
        const Addr a = counterAddr(amap, k, procs);
        const Addr line = amap.lineAddr(a);
        std::uint64_t v = 0;
        bool dirty = false;
        for (unsigned p = 0; p < procs && !dirty; ++p) {
            const CacheLine *cl = m.node(p).cache().array().lookup(line);
            if (cl && cl->state == CacheState::readWrite) {
                v = cl->words[amap.wordOf(a)];
                dirty = true;
            }
        }
        // Two-level machines: a chip home may hold the line dirty (it is
        // the exclusive owner at the global level) with only clean local
        // readers — the freshest value then lives in the chip's copy, not
        // in memory.
        for (unsigned p = 0; p < procs && !dirty; ++p) {
            const ChipHomeController *chip = m.node(p).chipHome();
            if (!chip || !chip->lineDirty(line))
                continue;
            v = (*chip->lineData(line))[amap.wordOf(a)];
            dirty = true;
        }
        if (!dirty)
            v = m.node(amap.homeOf(a)).mem().readLine(line)[amap.wordOf(a)];
        const std::uint64_t want =
            _tallies[k].load(std::memory_order_relaxed);
        if (v != want)
            panic("random-stress: counter %u ended at %llu, expected %llu",
                  k, (unsigned long long)v, (unsigned long long)want);
    }
}

} // namespace limitless
