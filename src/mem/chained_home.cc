/**
 * @file
 * Chained-directory home-node FSM (comparison baseline).
 *
 * The home keeps only a head pointer; caches hold forward pointers. The
 * defining property — sequential invalidation latency proportional to the
 * sharing-chain length — is modelled by walking the chain one member at a
 * time: the home INVs the current member, the member's ACKC carries its
 * successor, and the home proceeds. (Real SCI forwards the invalidation
 * cache-to-cache; driving the walk from the home doubles the constant but
 * preserves the linear shape and avoids SCI's unordered-channel races;
 * see DESIGN.md.)
 *
 * Shared lines may not be dropped silently (the chain would break);
 * replacement uses an explicit REPC transaction that unlinks via a full
 * chain invalidation.
 */

#include "mem/memory_controller.hh"
#include "sim/log.hh"

namespace limitless
{

void
MemoryController::processChained(PacketPtr &pkt_ptr, HomeLine &hl)
{
    Packet &pkt = *pkt_ptr;
    switch (hl.state) {
      case MemState::readOnly:
        chainedReadOnly(pkt_ptr, hl);
        return;

      case MemState::readWrite: {
        const Addr line = pkt.addr();
        const NodeId owner = _chained->head(line);
        assert(owner != invalidNode);
        switch (pkt.opcode) {
          case Opcode::RREQ:
            _statReads += 1;
            assert(pkt.src != owner);
            hl.pending = pkt.src;
            hl.dataSeen = false;
            hl.state = MemState::readTransaction;
            sendInv(owner, line);
            return;
          case Opcode::WREQ:
            _statWrites += 1;
            assert(pkt.src != owner);
            _statWorkerSet.sample(1);
            hl.pending = pkt.src;
            hl.walkTarget = invalidNode; // single-owner write
            hl.state = MemState::writeTransaction;
            sendInv(owner, line);
            return;
          case Opcode::REPM:
            assert(pkt.src == owner);
            writeLine(line, pkt.data);
            _chained->clear(line);
            hl.state = MemState::readOnly;
            replayDeferred(hl);
            return;
          case Opcode::REPC:
            // The line is exclusively owned, so the requester's chained
            // copy was already invalidated (every transition into
            // Read-Write dissolves the chain): grant immediately.
            // Deferring here would park the packet in a stable state
            // with no completion to replay it.
            dispatch(makeProtocolPacket(_self, pkt.src, Opcode::REPC_ACK,
                                        line));
            return;
          default:
            panic("chained home %u: bad opcode %s in Read-Write", _self,
                  opcodeName(pkt.opcode));
        }
      }

      case MemState::readTransaction: {
        const Addr line = pkt.addr();
        switch (pkt.opcode) {
          case Opcode::RREQ:
          case Opcode::WREQ:
          case Opcode::REPC:
            deferOrBusy(pkt_ptr, hl);
            return;
          case Opcode::UPDATE:
            writeLine(line, pkt.data);
            _chained->clear(line);
            _chained->push(line, hl.pending);
            sendReadData(hl.pending, line, invalidNode);
            hl.state = MemState::readOnly;
            replayDeferred(hl);
            return;
          case Opcode::REPM:
            writeLine(line, pkt.data);
            hl.dataSeen = true;
            return;
          case Opcode::ACKC:
            if (hl.dataSeen) {
                _chained->clear(line);
                _chained->push(line, hl.pending);
                sendReadData(hl.pending, line, invalidNode);
                hl.state = MemState::readOnly;
                hl.dataSeen = false;
                replayDeferred(hl);
            } else {
                _statStaleAcks += 1;
            }
            return;
          default:
            panic("chained home %u: bad opcode %s in Read-Transaction",
                  _self, opcodeName(pkt.opcode));
        }
      }

      case MemState::writeTransaction: {
        const Addr line = pkt.addr();
        switch (pkt.opcode) {
          case Opcode::RREQ:
          case Opcode::WREQ:
          case Opcode::REPC:
            deferOrBusy(pkt_ptr, hl);
            return;
          case Opcode::UPDATE:
            // Single-owner write: the previous owner returned the data.
            writeLine(line, pkt.data);
            _chained->clear(line);
            _chained->push(line, hl.pending);
            sendWriteData(hl.pending, line);
            hl.state = MemState::readWrite;
            replayDeferred(hl);
            return;
          case Opcode::REPM:
            writeLine(line, pkt.data);
            return;
          case Opcode::ACKC:
            chainedWalkAck(pkt, hl);
            return;
          default:
            panic("chained home %u: bad opcode %s in Write-Transaction",
                  _self, opcodeName(pkt.opcode));
        }
      }

      case MemState::evictTransaction: {
        const Addr line = pkt.addr();
        switch (pkt.opcode) {
          case Opcode::RREQ:
          case Opcode::WREQ:
          case Opcode::REPC:
            deferOrBusy(pkt_ptr, hl);
            return;
          case Opcode::ACKC: {
            assert(!pkt.operands.empty());
            const NodeId next =
                pkt.operands.size() > 1
                    ? static_cast<NodeId>(pkt.operands[1])
                    : invalidNode;
            if (next != invalidNode) {
                hl.walkTarget = next;
                sendInv(next, line);
                return;
            }
            _chained->clear(line);
            dispatch(makeProtocolPacket(_self, hl.repcRequester,
                                        Opcode::REPC_ACK, line));
            hl.repcRequester = invalidNode;
            hl.walkTarget = invalidNode;
            hl.state = MemState::readOnly;
            replayDeferred(hl);
            return;
          }
          default:
            panic("chained home %u: bad opcode %s in Evict-Transaction",
                  _self, opcodeName(pkt.opcode));
        }
      }
    }
}

void
MemoryController::chainedReadOnly(PacketPtr &pkt_ptr, HomeLine &hl)
{
    Packet &pkt = *pkt_ptr;
    const Addr line = pkt.addr();
    const NodeId src = pkt.src;
    const NodeId head = _chained->head(line);

    switch (pkt.opcode) {
      case Opcode::RREQ:
        _statReads += 1;
        // New reader becomes the head and links to the old head.
        _chained->push(line, src);
        sendReadData(src, line, head);
        return;

      case Opcode::WREQ:
        _statWrites += 1;
        if (head == invalidNode) {
            _statWorkerSet.sample(1);
            _chained->push(line, src);
            hl.state = MemState::readWrite;
            sendWriteData(src, line);
            return;
        }
        _statWorkerSet.sample(_chained->chainLength(line) + 1);
        hl.pending = src;
        hl.walkTarget = head;
        hl.state = MemState::writeTransaction;
        sendInv(head, line);
        return;

      case Opcode::REPC:
        if (head == invalidNode) {
            // The chain was already dissolved by a concurrent walk.
            dispatch(makeProtocolPacket(_self, src, Opcode::REPC_ACK,
                                        line));
            return;
        }
        hl.repcRequester = src;
        hl.walkTarget = head;
        hl.state = MemState::evictTransaction;
        sendInv(head, line);
        return;

      case Opcode::ACKC:
        _statStaleAcks += 1;
        return;

      default:
        panic("chained home %u: bad opcode %s in Read-Only", _self,
              opcodeName(pkt.opcode));
    }
}

void
MemoryController::chainedWalkStep(Addr line, HomeLine &hl, NodeId target)
{
    hl.walkTarget = target;
    sendInv(target, line);
}

void
MemoryController::chainedWalkAck(Packet &pkt, HomeLine &hl)
{
    const Addr line = pkt.addr();
    if (hl.walkTarget == invalidNode) {
        // Single-owner write whose REPM crossed our INV: the ACKC closes
        // the transaction (data arrived with the REPM).
        _chained->clear(line);
        _chained->push(line, hl.pending);
        sendWriteData(hl.pending, line);
        hl.state = MemState::readWrite;
        replayDeferred(hl);
        return;
    }
    const NodeId next = pkt.operands.size() > 1
                            ? static_cast<NodeId>(pkt.operands[1])
                            : invalidNode;
    if (next != invalidNode) {
        chainedWalkStep(line, hl, next);
        return;
    }
    // Tail reached: the whole chain is invalid; grant the write.
    _chained->clear(line);
    _chained->push(line, hl.pending);
    sendWriteData(hl.pending, line);
    hl.walkTarget = invalidNode;
    hl.state = MemState::readWrite;
    replayDeferred(hl);
}

} // namespace limitless
