#include "mem/memory_controller.hh"

#include <algorithm>
#include <cassert>
#include <ostream>
#include <set>

#include "directory/full_map_dir.hh"
#include "directory/limited_dir.hh"
#include "mem/home/home_policy.hh"
#include "obs/flight_recorder.hh"
#include "obs/host_profiler.hh"
#include "obs/telemetry.hh"
#include "sim/log.hh"

namespace limitless
{

MemoryController::MemoryController(EventQueue &eq, NodeId self,
                                   const AddressMap &amap,
                                   const ProtocolParams &proto,
                                   const MemParams &params)
    : _eq(eq), _self(self), _amap(amap), _proto(proto), _params(params),
      _swTable(amap.numNodes()), _profile(amap.numNodes()),
      _statRequests(_stats.counter("requests", "protocol packets serviced")),
      _statReads(_stats.counter("rreq", "read requests")),
      _statWrites(_stats.counter("wreq", "write requests")),
      _statBusyNacks(_stats.counter("busy_nacks", "BUSY responses sent")),
      _statInvsSent(_stats.counter("invs_sent", "invalidations sent")),
      _statEvictions(
          _stats.counter("evictions", "limited-dir pointer evictions")),
      _statReadTraps(_stats.counter(
          "read_traps", "LimitLESS pointer-overflow (read) traps")),
      _statWriteTraps(_stats.counter(
          "write_traps", "LimitLESS software write-gather traps")),
      _statTrapCycles(
          _stats.counter("trap_cycles", "cycles spent in Ts emulation")),
      _statStaleAcks(
          _stats.counter("stale_acks", "acknowledgments ignored")),
      _statWriteUpdates(_stats.counter(
          "write_updates", "update-mode writes serviced (Section 6)")),
      _statMigratoryEvictions(_stats.counter(
          "migratory_evictions",
          "software FIFO pointer evictions on migratory lines")),
      _statWorkerSet(_stats.distribution(
          "worker_set", "sharers invalidated per write", amap.numNodes()))
{
    switch (_proto.kind) {
      case ProtocolKind::fullMap:
        _dir = std::make_unique<FullMapDir>(_amap.numNodes());
        break;
      case ProtocolKind::limited:
        _dir = std::make_unique<LimitedDir>(_proto.pointers);
        break;
      case ProtocolKind::limitless: {
        auto ldir = std::make_unique<LimitlessDir>(_self, _proto.pointers,
                                                   _proto.localBit);
        _ldir = ldir.get();
        _dir = std::move(ldir);
        break;
      }
      case ProtocolKind::chained:
        // The chained protocol keeps only a head pointer at the home; the
        // DirectoryScheme slot holds a full map purely as a debugging aid
        // (the chained FSM never consults it).
        _dir = std::make_unique<FullMapDir>(_amap.numNodes());
        _chained = std::make_unique<ChainedDir>();
        break;
      case ProtocolKind::privateOnly:
        // Only local (home-node) copies are ever tracked.
        _dir = std::make_unique<FullMapDir>(_amap.numNodes());
        break;
    }
    _homePolicy = &home::homePolicyFor(_proto.kind);
}

void
MemoryController::writeLine(Addr line,
                            const std::vector<std::uint64_t> &words)
{
    LineWords &mem = _memory.try_emplace(line).first->second;
    const unsigned n =
        std::min<unsigned>(words.size(), _amap.wordsPerLine());
    for (unsigned i = 0; i < n; ++i)
        mem[i] = words[i];
}

void
MemoryController::noteReadTrap(Tick cycles)
{
    _statReadTraps += 1;
    _statTrapCycles += cycles;
}

void
MemoryController::noteWriteTrap(Tick cycles)
{
    _statWriteTraps += 1;
    _statTrapCycles += cycles;
}

std::size_t
MemoryController::workerSetSize(Addr line) const
{
    if (_chained)
        return _chained->chainLength(line);
    std::vector<NodeId> all;
    _dir->sharers(line, all);
    _swTable.sharers(line, all);
    std::sort(all.begin(), all.end());
    all.erase(std::unique(all.begin(), all.end()), all.end());
    return all.size();
}

double
MemoryController::overflowFraction() const
{
    const double reqs = static_cast<double>(_statReads.value() +
                                            _statWrites.value());
    if (reqs == 0)
        return 0.0;
    return (_statReadTraps.value() + _statWriteTraps.value()) / reqs;
}

namespace
{

void
checkpointPacket(std::ostream &os, const Packet &pkt)
{
    os << opcodeName(pkt.opcode) << pkt.src << ">" << pkt.dest << "(";
    for (std::size_t i = 0; i < pkt.operands.size(); ++i)
        os << (i ? "," : "") << pkt.operands[i];
    os << "|";
    for (std::size_t i = 0; i < pkt.data.size(); ++i)
        os << (i ? "," : "") << pkt.data[i];
    os << ")";
}

} // namespace

void
MemoryController::checkpoint(std::ostream &os) const
{
    // Deterministic line order: union of protocol-touched and
    // memory-touched lines, sorted.
    std::set<Addr> lines;
    for (const auto &[line, hl] : _lines)
        lines.insert(line);
    for (const auto &[line, words] : _memory)
        lines.insert(line);

    os << "mem" << _self << "{";
    for (Addr line : lines) {
        os << "L" << std::hex << line << std::dec << ":";
        auto lit = _lines.find(line);
        if (lit != _lines.end()) {
            const HomeLine &hl = lit->second;
            os << memStateName(hl.state) << ",a" << hl.ackCtr << ",p";
            if (hl.pending != invalidNode)
                os << hl.pending;
            os << (hl.dataSeen ? ",d" : "");
            if (hl.evictVictim != invalidNode)
                os << ",e" << hl.evictVictim;
            if (hl.updWrite || hl.updApply)
                os << ",u" << hl.updWrite << hl.updSilent << hl.updApply
                   << "." << hl.updWord << "." << int(hl.updKind) << "."
                   << hl.updValue << "." << hl.updOld;
            if (hl.pendingUncached)
                os << ",n";
            if (hl.walkTarget != invalidNode)
                os << ",w" << hl.walkTarget;
            if (hl.repcRequester != invalidNode)
                os << ",r" << hl.repcRequester;
            for (const PacketPtr &pkt : hl.deferred) {
                os << ",q";
                checkpointPacket(os, *pkt);
            }
        }
        // Directory view of the line (pointer sets are unordered
        // internally; sort for stability).
        std::vector<NodeId> sharers;
        _dir->sharers(line, sharers);
        std::sort(sharers.begin(), sharers.end());
        os << "/dir";
        for (NodeId n : sharers)
            os << "." << n;
        if (_ldir)
            os << "/meta" << metaStateName(_ldir->meta(line));
        if (_swTable.has(line)) {
            sharers.clear();
            _swTable.sharers(line, sharers);
            std::sort(sharers.begin(), sharers.end());
            os << "/sw";
            for (NodeId n : sharers)
                os << "." << n;
        }
        if (_chained && _chained->head(line) != invalidNode)
            os << "/ch" << _chained->head(line) << "x"
               << _chained->chainLength(line);
        auto mit = _memory.find(line);
        if (mit != _memory.end()) {
            os << "/m";
            for (unsigned w = 0; w < _amap.wordsPerLine(); ++w)
                os << (w ? "," : "") << mit->second[w];
        }
        os << ";";
    }
    // Packets accepted but not yet serviced.
    for (const PacketPtr &pkt : _queue) {
        os << "Q";
        checkpointPacket(os, *pkt);
        os << ";";
    }
    os << "}";
}

// --------------------------------------------------------------------
// Service loop
// --------------------------------------------------------------------

void
MemoryController::enqueue(PacketPtr pkt)
{
    assert(pkt && pkt->isProtocol());
    assert(_amap.homeOf(pkt->addr()) == _self &&
           "packet routed to the wrong home node");
    _queue.push_back(std::move(pkt));
    scheduleService();
}

void
MemoryController::scheduleService()
{
    if (_serviceScheduled || _queue.empty())
        return;
    _serviceScheduled = true;
    const Tick when = std::max(_eq.now(), _busyUntil);
    _eq.schedule(when, [this]() {
        _serviceScheduled = false;
        service();
    }, EventPriority::ctrl);
}

void
MemoryController::service()
{
    PROF_SCOPE("mem.service");
    assert(!_queue.empty());
    PacketPtr pkt = std::move(_queue.front());
    _queue.pop_front();
    _extraDelay = 0;
    _statRequests += 1;
    if (Log::enabled("mem"))
        Log::debug(_eq.now(), "mem", "home %u [%s] sv %s", _self,
                   memStateName(lineState(pkt->addr())),
                   describePacket(*pkt).c_str());

    const Addr line = pkt->addr();
    const NodeId src = pkt->src;
    const Opcode op = pkt->opcode;
    const MemState pre = lineState(line);
    // Tracer tags, captured now: process() may move the packet away
    // (deferral, trap divert) before the service window is known.
    const std::uint64_t txn_id = pkt->txnId;
    const std::uint32_t txn_leg = pkt->legSpan;
    const std::uint32_t txn_cause = pkt->causeSpan;
    // Re-stamped on deferred replay / BUSY retry, so earlier service
    // rounds land in the req_net phase.
    if (op == Opcode::RREQ || op == Opcode::WREQ)
        FlightRecorder::instance().latency().onHomeArrival(_eq.now(), src,
                                                           line);
    if (txn_id && (op == Opcode::ACKC || op == Opcode::UPDATE))
        FlightRecorder::instance().txn().onInvAck(txn_id, txn_cause,
                                                  _eq.now());
    {
        TraceEvent ev;
        ev.ts = _eq.now();
        ev.name = "service";
        ev.cat = EventCat::mem;
        ev.node = _self;
        ev.line = line;
        ev.op = op;
        ev.hasOp = true;
        ev.src = src;
        ev.detail = memStateName(pre);
        FR_RECORD(ev);
    }

    process(pkt, false);
    const MemState post = lineState(line);
    if (post != pre) {
        TraceEvent ev;
        ev.ts = _eq.now();
        ev.name = "fsm_state";
        ev.cat = EventCat::mem;
        ev.node = _self;
        ev.line = line;
        ev.detail = memStateName(post);
        FR_RECORD(ev);
    }
    _busyUntil = _eq.now() + _params.serviceCycles + _extraDelay;
    if (txn_id && (op == Opcode::RREQ || op == Opcode::WREQ))
        FlightRecorder::instance().txn().onHomeService(
            txn_id, txn_leg, _self, op, _eq.now(), _busyUntil);
    scheduleService();
}

void
MemoryController::processBypassingMeta(PacketPtr pkt)
{
    assert(pkt);
    process(pkt, true);
}

// --------------------------------------------------------------------
// Send helpers (honour the Ts delay of an in-flight software emulation)
// --------------------------------------------------------------------

void
MemoryController::sendReadData(NodeId to, Addr line, NodeId old_head)
{
    // The reply leaves once any in-flight Ts charge has elapsed (see
    // dispatch); stamp the launch at that time so trap cycles are not
    // double-counted into the reply_net phase.
    FlightRecorder::instance().latency().onReplySent(
        _eq.now() + _extraDelay, to, line);
    const LineWords &mem = readLine(line);
    auto pkt = makeDataPacket(_self, to, Opcode::RDATA, line,
                              mem.data(), _amap.wordsPerLine());
    if (_chained)
        pkt->operands.push_back(old_head);
    dispatch(std::move(pkt));
}

void
MemoryController::sendWriteData(NodeId to, Addr line)
{
    FlightRecorder::instance().latency().onReplySent(
        _eq.now() + _extraDelay, to, line);
    const LineWords &mem = readLine(line);
    dispatch(makeDataPacket(_self, to, Opcode::WDATA, line,
                            mem.data(), _amap.wordsPerLine()));
}

void
MemoryController::sendInv(NodeId to, Addr line)
{
    _statInvsSent += 1;
    // Every fan-out assigns hl.pending before the first sendInv, so it
    // names the requester whose transaction this invalidation serves.
    const NodeId pending = lineFor(line).pending;
    if (pending != invalidNode)
        FlightRecorder::instance().latency().onInvStart(
            _eq.now() + _extraDelay, pending, line);
    {
        TraceEvent ev;
        ev.ts = _eq.now();
        ev.name = "inv_tx";
        ev.cat = EventCat::mem;
        ev.node = _self;
        ev.line = line;
        ev.dest = to;
        FR_RECORD(ev);
    }
    auto pkt = makeProtocolPacket(_self, to, Opcode::INV, line);
    pkt->operands.push_back(_self);
    if (_curTxn) {
        pkt->txnId = _curTxn;
        FlightRecorder::instance().txn().onInvSend(
            *pkt, _self, _eq.now() + _extraDelay);
    }
    dispatch(std::move(pkt));
}

void
MemoryController::sendBusy(NodeId to, Addr line)
{
    _statBusyNacks += 1;
    dispatch(makeProtocolPacket(_self, to, Opcode::BUSY, line));
}

void
MemoryController::dispatch(PacketPtr pkt)
{
    // Home-originated packets (replies, BUSY nacks) inherit the serviced
    // request's transaction id; invalidations were tagged in sendInv.
    if (pkt->txnId == 0 && _curTxn != 0)
        pkt->txnId = _curTxn;
    if (_extraDelay == 0) {
        _send(std::move(pkt));
        return;
    }
    Packet *raw = pkt.release();
    _eq.schedule(_eq.now() + _extraDelay, [this, raw]() {
        _send(PacketPtr(raw));
    }, EventPriority::ctrl);
}

void
MemoryController::chargeTrap(Tick cycles, NodeId requester, Addr line)
{
    _extraDelay = cycles;
    _statTrapCycles += cycles;
    if (_trapServiceHist)
        _trapServiceHist->sample(cycles);
    FlightRecorder::instance().latency().onTrap(requester, line, cycles);
    if (_curTxn)
        FlightRecorder::instance().txn().onTrapCharge(_curTxn, _self,
                                                      _eq.now(), cycles);
    {
        TraceEvent ev;
        ev.ts = _eq.now();
        ev.name = "trap_charge";
        ev.cat = EventCat::trap;
        ev.node = _self;
        ev.line = line;
        ev.src = requester;
        ev.arg = cycles;
        ev.hasArg = true;
        FR_RECORD(ev);
    }
    if (_trapStall)
        _trapStall(cycles);
}

void
MemoryController::deferOrBusy(PacketPtr &pkt, HomeLine &hl)
{
    assert(opcodeIsHomeRequest(pkt->opcode));
    if (hl.deferred.size() < _params.deferDepth) {
        hl.deferred.push_back(std::move(pkt));
        return;
    }
    sendBusy(pkt->src, pkt->addr());
}

void
MemoryController::replayDeferred(HomeLine &hl)
{
    // Re-inject parked requests at the head of the service queue,
    // preserving their arrival order (they predate anything queued).
    for (auto it = hl.deferred.rbegin(); it != hl.deferred.rend(); ++it)
        _queue.push_front(std::move(*it));
    hl.deferred.clear();
    scheduleService();
}

// --------------------------------------------------------------------
// Protocol dispatch: one guarded-action table lookup (src/mem/home/)
// --------------------------------------------------------------------

void
MemoryController::divertToHandler(PacketPtr pkt)
{
    if (pkt->txnId)
        FlightRecorder::instance().txn().onTrapEnqueue(*pkt, _self,
                                                       _eq.now());
    _divert(std::move(pkt));
}

void
MemoryController::process(PacketPtr &pkt, bool bypass_meta)
{
    const Addr line = pkt->addr();
    const NodeId src = pkt->src;
    const Opcode op = pkt->opcode;
    _curTxn = pkt->txnId;
    HomeLine &hl = lineFor(line);
    home::HomeCtx ctx{*this, pkt, hl, bypass_meta};

    // Worker-set profiling taps requests at the same pre-dispatch point
    // the LimitLESS meta-state machine does (paper §6's Trap-Always
    // profiler); bypass_meta re-entries are the same request again.
    if (_wsProfile && !bypass_meta &&
        (op == Opcode::RREQ || op == Opcode::WREQ))
        _wsProfile->sample(workerSetSize(line));

    if (_homePolicy->preDispatch && _homePolicy->preDispatch(ctx))
        return;

    const auto pre = static_cast<std::uint8_t>(hl.state);
    const auto &tr = _homePolicy->table->fire(ctx, pre, op);
    _observed.insert((static_cast<std::uint32_t>(pre) << 16) |
                     static_cast<std::uint16_t>(op));
    {
        TraceEvent ev;
        ev.ts = _eq.now();
        ev.name = "transition";
        ev.cat = EventCat::mem;
        ev.node = _self;
        ev.line = line;
        ev.op = op;
        ev.hasOp = true;
        ev.src = src;
        ev.detail = tr.label;
        ev.arg = tr.id;
        ev.hasArg = true;
        FR_RECORD(ev);
    }
}

} // namespace limitless
