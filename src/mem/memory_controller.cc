#include "mem/memory_controller.hh"

#include <algorithm>
#include <cassert>

#include "directory/full_map_dir.hh"
#include "directory/limited_dir.hh"
#include "obs/flight_recorder.hh"
#include "sim/log.hh"

namespace limitless
{

const char *
memStateName(MemState s)
{
    switch (s) {
      case MemState::readOnly: return "Read-Only";
      case MemState::readWrite: return "Read-Write";
      case MemState::readTransaction: return "Read-Transaction";
      case MemState::writeTransaction: return "Write-Transaction";
      case MemState::evictTransaction: return "Evict-Transaction";
    }
    return "?";
}

MemoryController::MemoryController(EventQueue &eq, NodeId self,
                                   const AddressMap &amap,
                                   const ProtocolParams &proto,
                                   const MemParams &params)
    : _eq(eq), _self(self), _amap(amap), _proto(proto), _params(params),
      _swTable(amap.numNodes()), _profile(amap.numNodes()),
      _statRequests(_stats.counter("requests", "protocol packets serviced")),
      _statReads(_stats.counter("rreq", "read requests")),
      _statWrites(_stats.counter("wreq", "write requests")),
      _statBusyNacks(_stats.counter("busy_nacks", "BUSY responses sent")),
      _statInvsSent(_stats.counter("invs_sent", "invalidations sent")),
      _statEvictions(
          _stats.counter("evictions", "limited-dir pointer evictions")),
      _statReadTraps(_stats.counter(
          "read_traps", "LimitLESS pointer-overflow (read) traps")),
      _statWriteTraps(_stats.counter(
          "write_traps", "LimitLESS software write-gather traps")),
      _statTrapCycles(
          _stats.counter("trap_cycles", "cycles spent in Ts emulation")),
      _statStaleAcks(
          _stats.counter("stale_acks", "acknowledgments ignored")),
      _statWriteUpdates(_stats.counter(
          "write_updates", "update-mode writes serviced (Section 6)")),
      _statMigratoryEvictions(_stats.counter(
          "migratory_evictions",
          "software FIFO pointer evictions on migratory lines")),
      _statWorkerSet(_stats.distribution(
          "worker_set", "sharers invalidated per write", amap.numNodes()))
{
    switch (_proto.kind) {
      case ProtocolKind::fullMap:
        _dir = std::make_unique<FullMapDir>(_amap.numNodes());
        break;
      case ProtocolKind::limited:
        _dir = std::make_unique<LimitedDir>(_proto.pointers);
        break;
      case ProtocolKind::limitless: {
        auto ldir = std::make_unique<LimitlessDir>(_self, _proto.pointers,
                                                   _proto.localBit);
        _ldir = ldir.get();
        _dir = std::move(ldir);
        break;
      }
      case ProtocolKind::chained:
        // The chained protocol keeps only a head pointer at the home; the
        // DirectoryScheme slot holds a full map purely as a debugging aid
        // (the chained FSM never consults it).
        _dir = std::make_unique<FullMapDir>(_amap.numNodes());
        _chained = std::make_unique<ChainedDir>();
        break;
      case ProtocolKind::privateOnly:
        // Only local (home-node) copies are ever tracked.
        _dir = std::make_unique<FullMapDir>(_amap.numNodes());
        break;
    }
}

MemoryController::HomeLine &
MemoryController::lineFor(Addr line)
{
    return _lines.try_emplace(line).first->second;
}

MemState
MemoryController::lineState(Addr line) const
{
    auto it = _lines.find(line);
    return it == _lines.end() ? MemState::readOnly : it->second.state;
}

void
MemoryController::setLineState(Addr line, MemState s)
{
    lineFor(line).state = s;
}

std::uint32_t
MemoryController::ackCounter(Addr line) const
{
    auto it = _lines.find(line);
    return it == _lines.end() ? 0 : it->second.ackCtr;
}

void
MemoryController::setAckCounter(Addr line, std::uint32_t n)
{
    lineFor(line).ackCtr = n;
}

NodeId
MemoryController::pendingRequester(Addr line) const
{
    auto it = _lines.find(line);
    return it == _lines.end() ? invalidNode : it->second.pending;
}

void
MemoryController::setPendingRequester(Addr line, NodeId n)
{
    lineFor(line).pending = n;
}

const LineWords &
MemoryController::readLine(Addr line)
{
    return _memory.try_emplace(line).first->second;
}

void
MemoryController::writeLine(Addr line,
                            const std::vector<std::uint64_t> &words)
{
    LineWords &mem = _memory.try_emplace(line).first->second;
    const unsigned n =
        std::min<unsigned>(words.size(), _amap.wordsPerLine());
    for (unsigned i = 0; i < n; ++i)
        mem[i] = words[i];
}

void
MemoryController::noteReadTrap(Tick cycles)
{
    _statReadTraps += 1;
    _statTrapCycles += cycles;
}

void
MemoryController::noteWriteTrap(Tick cycles)
{
    _statWriteTraps += 1;
    _statTrapCycles += cycles;
}

double
MemoryController::overflowFraction() const
{
    const double reqs = static_cast<double>(_statReads.value() +
                                            _statWrites.value());
    if (reqs == 0)
        return 0.0;
    return (_statReadTraps.value() + _statWriteTraps.value()) / reqs;
}

// --------------------------------------------------------------------
// Service loop
// --------------------------------------------------------------------

void
MemoryController::enqueue(PacketPtr pkt)
{
    assert(pkt && pkt->isProtocol());
    assert(_amap.homeOf(pkt->addr()) == _self &&
           "packet routed to the wrong home node");
    _queue.push_back(std::move(pkt));
    scheduleService();
}

void
MemoryController::scheduleService()
{
    if (_serviceScheduled || _queue.empty())
        return;
    _serviceScheduled = true;
    const Tick when = std::max(_eq.now(), _busyUntil);
    _eq.schedule(when, [this]() {
        _serviceScheduled = false;
        service();
    }, EventPriority::ctrl);
}

void
MemoryController::service()
{
    assert(!_queue.empty());
    PacketPtr pkt = std::move(_queue.front());
    _queue.pop_front();
    _extraDelay = 0;
    _statRequests += 1;
    if (Log::enabled("mem"))
        Log::debug(_eq.now(), "mem", "home %u [%s] sv %s", _self,
                   memStateName(lineState(pkt->addr())),
                   describePacket(*pkt).c_str());

    const Addr line = pkt->addr();
    const NodeId src = pkt->src;
    const Opcode op = pkt->opcode;
    const MemState pre = lineState(line);
    // Re-stamped on deferred replay / BUSY retry, so earlier service
    // rounds land in the req_net phase.
    if (op == Opcode::RREQ || op == Opcode::WREQ)
        FlightRecorder::instance().latency().onHomeArrival(_eq.now(), src,
                                                           line);
    {
        TraceEvent ev;
        ev.ts = _eq.now();
        ev.name = "service";
        ev.cat = EventCat::mem;
        ev.node = _self;
        ev.line = line;
        ev.op = op;
        ev.hasOp = true;
        ev.src = src;
        ev.detail = memStateName(pre);
        FR_RECORD(ev);
    }

    process(pkt, false);
    const MemState post = lineState(line);
    if (post != pre) {
        TraceEvent ev;
        ev.ts = _eq.now();
        ev.name = "fsm_state";
        ev.cat = EventCat::mem;
        ev.node = _self;
        ev.line = line;
        ev.detail = memStateName(post);
        FR_RECORD(ev);
    }
    _busyUntil = _eq.now() + _params.serviceCycles + _extraDelay;
    scheduleService();
}

void
MemoryController::processBypassingMeta(PacketPtr pkt)
{
    assert(pkt);
    process(pkt, true);
}

// --------------------------------------------------------------------
// Send helpers (honour the Ts delay of an in-flight software emulation)
// --------------------------------------------------------------------

namespace
{

bool
isRequestOpcode(Opcode op)
{
    return op == Opcode::RREQ || op == Opcode::WREQ ||
           op == Opcode::REPC || op == Opcode::WUPD ||
           op == Opcode::RUNC;
}

} // namespace

void
MemoryController::sendReadData(NodeId to, Addr line, NodeId old_head)
{
    // The reply leaves once any in-flight Ts charge has elapsed (see
    // dispatch); stamp the launch at that time so trap cycles are not
    // double-counted into the reply_net phase.
    FlightRecorder::instance().latency().onReplySent(
        _eq.now() + _extraDelay, to, line);
    const LineWords &mem = readLine(line);
    auto pkt = makeDataPacket(
        _self, to, Opcode::RDATA, line,
        {mem.begin(), mem.begin() + _amap.wordsPerLine()});
    if (_chained)
        pkt->operands.push_back(old_head);
    dispatch(std::move(pkt));
}

void
MemoryController::sendWriteData(NodeId to, Addr line)
{
    FlightRecorder::instance().latency().onReplySent(
        _eq.now() + _extraDelay, to, line);
    const LineWords &mem = readLine(line);
    dispatch(makeDataPacket(
        _self, to, Opcode::WDATA, line,
        {mem.begin(), mem.begin() + _amap.wordsPerLine()}));
}

void
MemoryController::sendInv(NodeId to, Addr line)
{
    _statInvsSent += 1;
    // Every fan-out assigns hl.pending before the first sendInv, so it
    // names the requester whose transaction this invalidation serves.
    const NodeId pending = lineFor(line).pending;
    if (pending != invalidNode)
        FlightRecorder::instance().latency().onInvStart(
            _eq.now() + _extraDelay, pending, line);
    {
        TraceEvent ev;
        ev.ts = _eq.now();
        ev.name = "inv_tx";
        ev.cat = EventCat::mem;
        ev.node = _self;
        ev.line = line;
        ev.dest = to;
        FR_RECORD(ev);
    }
    auto pkt = makeProtocolPacket(_self, to, Opcode::INV, line);
    pkt->operands.push_back(_self);
    dispatch(std::move(pkt));
}

void
MemoryController::sendBusy(NodeId to, Addr line)
{
    _statBusyNacks += 1;
    dispatch(makeProtocolPacket(_self, to, Opcode::BUSY, line));
}

void
MemoryController::dispatch(PacketPtr pkt)
{
    if (_extraDelay == 0) {
        _send(std::move(pkt));
        return;
    }
    Packet *raw = pkt.release();
    _eq.schedule(_eq.now() + _extraDelay, [this, raw]() {
        _send(PacketPtr(raw));
    }, EventPriority::ctrl);
}

void
MemoryController::chargeTrap(Tick cycles, NodeId requester, Addr line)
{
    _extraDelay = cycles;
    _statTrapCycles += cycles;
    FlightRecorder::instance().latency().onTrap(requester, line, cycles);
    {
        TraceEvent ev;
        ev.ts = _eq.now();
        ev.name = "trap_charge";
        ev.cat = EventCat::trap;
        ev.node = _self;
        ev.line = line;
        ev.src = requester;
        ev.arg = cycles;
        ev.hasArg = true;
        FR_RECORD(ev);
    }
    if (_trapStall)
        _trapStall(cycles);
}

void
MemoryController::deferOrBusy(PacketPtr &pkt, HomeLine &hl)
{
    assert(isRequestOpcode(pkt->opcode));
    if (hl.deferred.size() < _params.deferDepth) {
        hl.deferred.push_back(std::move(pkt));
        return;
    }
    sendBusy(pkt->src, pkt->addr());
}

void
MemoryController::replayDeferred(HomeLine &hl)
{
    // Re-inject parked requests at the head of the service queue,
    // preserving their arrival order (they predate anything queued).
    for (auto it = hl.deferred.rbegin(); it != hl.deferred.rend(); ++it)
        _queue.push_front(std::move(*it));
    hl.deferred.clear();
    scheduleService();
}

// --------------------------------------------------------------------
// Protocol FSM
// --------------------------------------------------------------------

void
MemoryController::process(PacketPtr &pkt, bool bypass_meta)
{
    const Addr line = pkt->addr();
    HomeLine &hl = lineFor(line);

    if (_chained) {
        processChained(pkt, hl);
        return;
    }

    // LimitLESS meta-state checks (full emulation mode only; the stall
    // approximation emulates traps inline and never leaves Normal-mode
    // processing windows).
    if (_ldir && !bypass_meta &&
        _proto.limitlessMode == LimitlessMode::fullEmulation) {
        const MetaState meta = _ldir->meta(line);
        if (meta == MetaState::transInProgress) {
            if (isRequestOpcode(pkt->opcode)) {
                sendBusy(pkt->src, line);
                return;
            }
            panic("home %u: response %s for interlocked line %#llx", _self,
                  opcodeName(pkt->opcode), (unsigned long long)line);
        }
        const bool trap_write =
            meta == MetaState::trapOnWrite &&
            (pkt->opcode == Opcode::WREQ ||
             pkt->opcode == Opcode::UPDATE || pkt->opcode == Opcode::REPM);
        if (meta == MetaState::trapAlways || trap_write) {
            if (pkt->opcode == Opcode::WREQ)
                _statWrites += 1;
            else if (pkt->opcode == Opcode::RREQ)
                _statReads += 1;
            _ldir->setMeta(line, MetaState::transInProgress);
            _divert(std::move(pkt));
            return;
        }
    }

    switch (hl.state) {
      case MemState::readOnly:
        processReadOnly(pkt, hl, bypass_meta);
        break;
      case MemState::readWrite:
        processReadWrite(*pkt, hl);
        break;
      case MemState::readTransaction:
        processReadTransaction(pkt, hl);
        break;
      case MemState::writeTransaction:
        processWriteTransaction(pkt, hl);
        break;
      case MemState::evictTransaction:
        processEvictTransaction(pkt, hl);
        break;
    }
}

void
MemoryController::processReadOnly(PacketPtr &pkt, HomeLine &hl,
                                  bool bypass_meta)
{
    const Addr line = pkt->addr();
    const NodeId src = pkt->src;

    switch (pkt->opcode) {
      case Opcode::RREQ: {
        _statReads += 1;
        // Stall-approximation Trap-Always ablation: once a line has been
        // demoted to software, every access traps.
        if (_ldir && _proto.limitlessMode == LimitlessMode::stallApprox &&
            _ldir->meta(line) == MetaState::trapAlways) {
            _swTable.addSharer(line, src);
            _profile.addSharer(line, src);
            _statReadTraps += 1;
            chargeTrap(_proto.softwareLatency, src, line);
            sendReadData(src, line);
            return;
        }
        const DirAdd r = _dir->tryAdd(line, src);
        if (r != DirAdd::overflow) {
            sendReadData(src, line);
            return;
        }
        switch (_proto.kind) {
          case ProtocolKind::fullMap:
            panic("full-map directory overflowed");
          case ProtocolKind::limited: {
            // Dir_i NB pointer eviction: invalidate a victim copy, then
            // grant the pointer to the new reader.
            auto *ldir = static_cast<LimitedDir *>(_dir.get());
            const NodeId victim = ldir->pickVictim(line);
            _statEvictions += 1;
            hl.state = MemState::evictTransaction;
            hl.evictVictim = victim;
            hl.pending = src;
            sendInv(victim, line);
            return;
          }
          case ProtocolKind::limitless:
            if (_proto.limitlessMode == LimitlessMode::stallApprox) {
                limitlessReadOverflow(*pkt, hl);
            } else {
                assert(!bypass_meta &&
                       "trap handler must not overflow the pointers");
                _ldir->setMeta(line, MetaState::transInProgress);
                _divert(std::move(pkt));
            }
            return;
          case ProtocolKind::chained:
            panic("chained protocol in pointer FSM");
          case ProtocolKind::privateOnly:
            panic("private-only machine overflowed a full map");
        }
        return;
      }

      case Opcode::WREQ: {
        _statWrites += 1;
        if (_ldir && limitlessWriteNeedsTrap(line)) {
            // Only reachable inline in stall-approximation mode (full
            // emulation diverts trapped writes before the FSM).
            limitlessWriteTrap(*pkt, hl);
            return;
        }
        std::vector<NodeId> sharer_list;
        _dir->sharers(line, sharer_list);
        std::vector<NodeId> others;
        for (NodeId n : sharer_list)
            if (n != src)
                others.push_back(n);
        _statWorkerSet.sample(others.size() + 1);
        _dir->clear(line);
        const DirAdd r = _dir->tryAdd(line, src);
        assert(r != DirAdd::overflow);
        (void)r;
        startWriteTransaction(line, hl, src, others);
        return;
      }

      case Opcode::WUPD:
        handleWriteUpdate(*pkt, hl);
        return;

      case Opcode::RUNC:
        // Uncached read (private-only baseline): data, no pointer.
        _statReads += 1;
        sendReadData(src, line);
        return;

      case Opcode::REPM:
        panic("home %u: REPM in Read-Only state for line %#llx", _self,
              (unsigned long long)line);

      case Opcode::UPDATE:
        panic("home %u: UPDATE in Read-Only state for line %#llx", _self,
              (unsigned long long)line);

      case Opcode::ACKC:
        // Legally unreachable (see DESIGN.md ack-discipline note); kept
        // tolerant so the stat can be asserted zero in property tests.
        _statStaleAcks += 1;
        return;

      default:
        panic("home %u: bad opcode %s in Read-Only", _self,
              opcodeName(pkt->opcode));
    }
}

void
MemoryController::processReadWrite(Packet &pkt, HomeLine &hl)
{
    const Addr line = pkt.addr();
    const NodeId src = pkt.src;

    std::vector<NodeId> owner_list;
    _dir->sharers(line, owner_list);
    assert(owner_list.size() == 1 && "Read-Write must have one owner");
    const NodeId owner = owner_list[0];

    // Trap-Always lines are software-handled even when exclusively
    // owned: the request still goes through the normal ownership
    // transfer below, but the access is recorded and charged Ts
    // (stall-approximation path; full emulation diverts before the FSM).
    if (_ldir && _proto.limitlessMode == LimitlessMode::stallApprox &&
        _ldir->meta(line) == MetaState::trapAlways &&
        (pkt.opcode == Opcode::RREQ || pkt.opcode == Opcode::WREQ)) {
        _profile.addSharer(line, src);
        _statReadTraps += 1;
        chargeTrap(_proto.softwareLatency, src, line);
    }

    switch (pkt.opcode) {
      case Opcode::RREQ:
        _statReads += 1;
        assert(src != owner && "owner re-requesting a line it owns");
        _dir->clear(line);
        _dir->tryAdd(line, src);
        hl.pending = src;
        hl.dataSeen = false;
        hl.state = MemState::readTransaction;
        sendInv(owner, line);
        return;

      case Opcode::WREQ:
        _statWrites += 1;
        assert(src != owner);
        _statWorkerSet.sample(1);
        _dir->clear(line);
        _dir->tryAdd(line, src);
        hl.pending = src;
        hl.ackCtr = 1;
        hl.state = MemState::writeTransaction;
        sendInv(owner, line);
        return;

      case Opcode::RUNC:
        // Uncached read of a dirty line: recall the data first, then
        // answer without recording a pointer.
        _statReads += 1;
        assert(src != owner);
        _dir->clear(line);
        hl.pending = src;
        hl.pendingUncached = true;
        hl.dataSeen = false;
        hl.state = MemState::readTransaction;
        sendInv(owner, line);
        return;

      case Opcode::WUPD: {
        // Write-update against a dirty line (private-only remote write,
        // or a mixed-policy race): recall the data, then apply.
        if (_policy && _policy->isUpdateMode(line))
            panic("home %u: update-mode line %#llx held exclusively "
                  "(mark lines before first use)",
                  _self, (unsigned long long)line);
        _statWrites += 1;
        _dir->clear(line);
        hl.pending = src;
        hl.ackCtr = 1;
        hl.state = MemState::writeTransaction;
        hl.updWrite = true;
        hl.updApply = true;
        hl.updWord = static_cast<unsigned>(pkt.operands.at(1));
        hl.updKind = static_cast<std::uint8_t>(pkt.operands.at(2));
        hl.updValue = pkt.operands.at(3);
        sendInv(owner, line);
        return;
      }

      case Opcode::REPM:
        assert(src == owner && "REPM from a non-owner");
        writeLine(line, pkt.data);
        _dir->clear(line);
        hl.state = MemState::readOnly;
        replayDeferred(hl);
        return;

      case Opcode::ACKC:
        _statStaleAcks += 1;
        return;

      default:
        panic("home %u: bad opcode %s in Read-Write", _self,
              opcodeName(pkt.opcode));
    }
}

void
MemoryController::processReadTransaction(PacketPtr &pkt, HomeLine &hl)
{
    const Addr line = pkt->addr();

    switch (pkt->opcode) {
      case Opcode::RREQ:
      case Opcode::WREQ:
      case Opcode::REPC:
      case Opcode::WUPD:
      case Opcode::RUNC:
        deferOrBusy(pkt, hl);
        return;

      case Opcode::UPDATE:
        // Transition 10: previous owner returns the data.
        writeLine(line, pkt->data);
        FlightRecorder::instance().latency().onInvEnd(_eq.now(),
                                                      hl.pending, line);
        sendReadData(hl.pending, line);
        hl.state = MemState::readOnly;
        hl.dataSeen = false;
        hl.pendingUncached = false;
        replayDeferred(hl);
        return;

      case Opcode::REPM:
        // The owner's replacement crossed our INV; the data arrives here
        // and the owner's ACKC (to the INV) closes the transaction.
        writeLine(line, pkt->data);
        hl.dataSeen = true;
        return;

      case Opcode::ACKC:
        if (hl.dataSeen) {
            FlightRecorder::instance().latency().onInvEnd(_eq.now(),
                                                          hl.pending, line);
            sendReadData(hl.pending, line);
            hl.state = MemState::readOnly;
            hl.dataSeen = false;
            hl.pendingUncached = false;
            replayDeferred(hl);
        } else {
            _statStaleAcks += 1;
        }
        return;

      default:
        panic("home %u: bad opcode %s in Read-Transaction", _self,
              opcodeName(pkt->opcode));
    }
}

void
MemoryController::processWriteTransaction(PacketPtr &pkt, HomeLine &hl)
{
    const Addr line = pkt->addr();

    switch (pkt->opcode) {
      case Opcode::RREQ:
      case Opcode::WREQ:
      case Opcode::REPC:
      case Opcode::WUPD:
      case Opcode::RUNC:
        // Transition 7: requests wait out the invalidation.
        deferOrBusy(pkt, hl);
        return;

      case Opcode::UPDATE:
        writeLine(line, pkt->data);
        [[fallthrough]];
      case Opcode::ACKC:
        assert(hl.ackCtr > 0 && "acknowledgment counter underflow");
        --hl.ackCtr;
        if (hl.ackCtr == 0) {
            FlightRecorder::instance().latency().onInvEnd(_eq.now(),
                                                          hl.pending, line);
            if (hl.updWrite) {
                if (hl.updApply) {
                    // Recalled-data case: apply the write now that the
                    // owner's data is in memory.
                    LineWords &mem =
                        _memory.try_emplace(line).first->second;
                    hl.updOld = mem[hl.updWord];
                    switch (static_cast<MemOpKind>(hl.updKind)) {
                      case MemOpKind::store:
                      case MemOpKind::swap:
                        mem[hl.updWord] = hl.updValue;
                        break;
                      case MemOpKind::fetchAdd:
                        mem[hl.updWord] = hl.updOld + hl.updValue;
                        break;
                      case MemOpKind::load:
                        panic("WUPD carrying a load");
                    }
                    _statWriteUpdates += 1;
                    hl.updApply = false;
                }
                // Update-mode write: every cached copy is refreshed; the
                // writer gets the old word, the line stays Read-Only.
                if (!hl.updSilent) {
                    auto wack = makeProtocolPacket(_self, hl.pending,
                                                   Opcode::WACK, line);
                    wack->operands.push_back(hl.updOld);
                    dispatch(std::move(wack));
                }
                hl.updWrite = false;
                hl.updSilent = false;
                hl.state = MemState::readOnly;
            } else {
                // Transition 8: grant write permission.
                sendWriteData(hl.pending, line);
                hl.state = MemState::readWrite;
            }
            replayDeferred(hl);
        }
        return;

      case Opcode::REPM:
        // Crossed replacement: take the data; the ACKC that follows the
        // INV performs the decrement (ack discipline, DESIGN.md §7).
        writeLine(line, pkt->data);
        return;

      default:
        panic("home %u: bad opcode %s in Write-Transaction", _self,
              opcodeName(pkt->opcode));
    }
}

void
MemoryController::processEvictTransaction(PacketPtr &pkt, HomeLine &hl)
{
    const Addr line = pkt->addr();

    switch (pkt->opcode) {
      case Opcode::RREQ:
      case Opcode::WREQ:
      case Opcode::REPC:
      case Opcode::WUPD:
      case Opcode::RUNC:
        deferOrBusy(pkt, hl);
        return;

      case Opcode::ACKC: {
        // Victim invalidated: recycle its pointer for the waiting reader.
        _dir->remove(line, hl.evictVictim);
        const DirAdd r = _dir->tryAdd(line, hl.pending);
        assert(r != DirAdd::overflow);
        (void)r;
        FlightRecorder::instance().latency().onInvEnd(_eq.now(),
                                                      hl.pending, line);
        sendReadData(hl.pending, line);
        hl.evictVictim = invalidNode;
        hl.state = MemState::readOnly;
        replayDeferred(hl);
        return;
      }

      default:
        panic("home %u: bad opcode %s in Evict-Transaction", _self,
              opcodeName(pkt->opcode));
    }
}

// --------------------------------------------------------------------
// LimitLESS software paths (stall approximation)
// --------------------------------------------------------------------

void
MemoryController::limitlessReadOverflow(Packet &pkt, HomeLine &hl)
{
    const Addr line = pkt.addr();

    // Migratory lines (Section 6): the handler evicts the oldest
    // pointer FIFO instead of spilling a bit vector — the worker-set
    // is about to move on anyway, so a full map would be stale the
    // moment it was allocated.
    if (_policy && _policy->isMigratory(line)) {
        std::vector<NodeId> hw;
        _ldir->sharers(line, hw);
        assert(!hw.empty());
        // Oldest remote pointer (slot 0; sharers() lists the local bit
        // first when set, and the local copy is never the right victim
        // for migrating data).
        NodeId victim = hw[0];
        if (victim == _self && hw.size() > 1)
            victim = hw[1];
        _statMigratoryEvictions += 1;
        chargeTrap(_proto.softwareLatency, pkt.src, line);
        hl.state = MemState::evictTransaction;
        hl.evictVictim = victim;
        hl.pending = pkt.src;
        sendInv(victim, line);
        return;
    }

    std::vector<NodeId> spilled;
    _ldir->spillPointers(line, spilled);
    _swTable.addSharers(line, spilled);
    _statReadTraps += 1;
    chargeTrap(_proto.softwareLatency, pkt.src, line);

    if (_proto.trapOnWrite) {
        // Trap-On-Write optimization: the emptied pointer array lets the
        // controller absorb further reads in hardware.
        const DirAdd r = _dir->tryAdd(line, pkt.src);
        assert(r != DirAdd::overflow);
        (void)r;
        _ldir->setMeta(line, MetaState::trapOnWrite);
    } else {
        // Ablation D1: leave the line fully software-handled.
        _swTable.addSharer(line, pkt.src);
        _ldir->setMeta(line, MetaState::trapAlways);
    }
    sendReadData(pkt.src, line);
}

bool
MemoryController::limitlessWriteNeedsTrap(Addr line) const
{
    return _swTable.has(line) || _ldir->meta(line) != MetaState::normal;
}

void
MemoryController::limitlessWriteTrap(Packet &pkt, HomeLine &hl)
{
    const Addr line = pkt.addr();
    const NodeId src = pkt.src;

    std::vector<NodeId> all;
    _ldir->sharers(line, all);
    _swTable.sharers(line, all);
    std::sort(all.begin(), all.end());
    all.erase(std::unique(all.begin(), all.end()), all.end());
    std::vector<NodeId> others;
    for (NodeId n : all)
        if (n != src)
            others.push_back(n);
    _statWorkerSet.sample(others.size() + 1);

    // Trap-Always lines stay software-handled (profiling / ablation D1)
    // and keep accumulating their access profile across writes.
    const bool sticky = _ldir->meta(line) == MetaState::trapAlways;
    if (sticky) {
        _profile.addSharers(line, all);
        _profile.addSharer(line, src);
    }
    _swTable.free(line);
    _ldir->clear(line);
    _ldir->setMeta(line,
                   sticky ? MetaState::trapAlways : MetaState::normal);
    const DirAdd r = _ldir->tryAdd(line, src);
    assert(r != DirAdd::overflow);
    (void)r;

    _statWriteTraps += 1;
    chargeTrap(_proto.softwareLatency, src, line);
    startWriteTransaction(line, hl, src, others);
}

void
MemoryController::handleWriteUpdate(Packet &pkt, HomeLine &hl)
{
    if (_chained)
        panic("update-mode coherence is not supported under the chained "
              "protocol");
    const Addr line = pkt.addr();
    const NodeId src = pkt.src;
    const unsigned word = static_cast<unsigned>(pkt.operands.at(1));
    const auto kind = static_cast<MemOpKind>(pkt.operands.at(2));
    const std::uint64_t value = pkt.operands.at(3);
    const bool silent =
        pkt.operands.size() > 4 && (pkt.operands[4] & 1);
    assert(word < _amap.wordsPerLine());

    // Perform the operation at memory (atomic: the home serializes).
    LineWords &mem = _memory.try_emplace(line).first->second;
    const std::uint64_t old = mem[word];
    switch (kind) {
      case MemOpKind::store:
      case MemOpKind::swap:
        mem[word] = value;
        break;
      case MemOpKind::fetchAdd:
        mem[word] = old + value;
        break;
      case MemOpKind::load:
        panic("WUPD carrying a load");
    }
    _statWriteUpdates += 1;

    // Refresh every cached copy in place; the sharer set is untouched
    // (that is the whole point of update mode). Software-extended state
    // is consulted but not freed.
    std::vector<NodeId> sharers;
    _dir->sharers(line, sharers);
    _swTable.sharers(line, sharers);
    std::sort(sharers.begin(), sharers.end());
    sharers.erase(std::unique(sharers.begin(), sharers.end()),
                  sharers.end());

    // This is a software-synthesized coherence type on the LimitLESS
    // machine: charge the handler occupancy.
    if (_ldir)
        chargeTrap(_proto.softwareLatency, src, line);

    if (sharers.empty()) {
        if (!silent) {
            auto wack = makeProtocolPacket(_self, src, Opcode::WACK,
                                           line);
            wack->operands.push_back(old);
            dispatch(std::move(wack));
        }
        return;
    }
    hl.state = MemState::writeTransaction;
    hl.updWrite = true;
    hl.updSilent = silent;
    hl.updOld = old;
    hl.pending = src;
    hl.ackCtr = static_cast<std::uint32_t>(sharers.size());
    for (NodeId n : sharers) {
        auto mupd = makeDataPacket(
            _self, n, Opcode::MUPD, line,
            {mem.begin(), mem.begin() + _amap.wordsPerLine()});
        dispatch(std::move(mupd));
    }
}

void
MemoryController::startWriteTransaction(Addr line, HomeLine &hl,
                                        NodeId requester,
                                        const std::vector<NodeId> &to_inv)
{
    if (to_inv.empty()) {
        // Transition 2: no other copies; grant immediately.
        hl.state = MemState::readWrite;
        sendWriteData(requester, line);
        return;
    }
    // Transition 3: invalidate every other copy first.
    hl.state = MemState::writeTransaction;
    hl.pending = requester;
    hl.ackCtr = static_cast<std::uint32_t>(to_inv.size());
    for (NodeId n : to_inv)
        sendInv(n, line);
}

} // namespace limitless
