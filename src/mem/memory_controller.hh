/**
 * @file
 * Memory-side coherence controller: the shared home-node core (service
 * loop, HomeLine map, ack counters, send helpers, statistics) behind
 * the per-scheme policy units in src/mem/home/.
 *
 * One controller per node; it owns the node's slice of globally shared
 * memory (real data words) and the directory entries for lines homed
 * there. Incoming protocol packets are serviced one at a time with a
 * configurable occupancy, which is what makes widely shared lines into
 * hot spots.
 *
 * All protocol behavior lives in the guarded-action transition tables
 * of src/mem/home/{full_map,limited,limitless,chained,private}_home.cc
 * (see src/proto/protocol_table.hh); process() is a single table
 * dispatch. The transition actions drive this class exclusively through
 * its public transition-action API below.
 *
 * LimitLESS support: in stall-approximation mode (the paper's evaluation
 * methodology) pointer overflows are emulated inline and charged Ts
 * cycles to both the controller and the home processor. In
 * full-emulation mode overflowed packets are diverted through the IPI
 * interface to a software trap handler (src/kernel/limitless_handler.hh)
 * which manipulates this controller through the software-access methods
 * at the bottom of the class — the "complete access to coherence-related
 * controller state" of paper Section 4.1.
 */

#ifndef LIMITLESS_MEM_MEMORY_CONTROLLER_HH
#define LIMITLESS_MEM_MEMORY_CONTROLLER_HH

#include <array>
#include <deque>
#include <functional>
#include <iosfwd>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "cache/mem_op.hh"
#include "directory/chained_dir.hh"
#include "directory/directory.hh"
#include "directory/limitless_dir.hh"
#include "kernel/software_dir.hh"
#include "machine/address_map.hh"
#include "machine/coherence_policy.hh"
#include "mem/home/home_line.hh"
#include "proto/packet.hh"
#include "proto/protocol_params.hh"
#include "proto/states.hh"
#include "sim/event_queue.hh"
#include "stats/stats.hh"

namespace limitless
{

namespace home
{
struct HomePolicy;
} // namespace home

class Log2Histogram;

/** Controller timing knobs. */
struct MemParams
{
    Tick serviceCycles = 4; ///< occupancy per protocol packet

    /**
     * Requests arriving for a line that is mid-transaction are parked in
     * a small per-line buffer (replayed FIFO when the transaction
     * completes) instead of being BUSY-nacked; only when the buffer is
     * full does the controller nack. Depth 0 recovers the pure
     * nack-and-retry protocol (ablation D4). Without this, heavy read
     * sharing on a limited directory can starve writers indefinitely:
     * readers keep the entry in eviction transactions and every write
     * retry loses the race.
     */
    unsigned deferDepth = 4;
};

/** A line's worth of memory words. */
using LineWords = std::array<std::uint64_t, AddressMap::maxWordsPerLine>;

/** The per-node memory + directory controller. */
class MemoryController
{
  public:
    using SendFn = std::function<void(PacketPtr)>;
    /** Stall the home processor (stall-approximation Ts charge). */
    using TrapStallFn = std::function<void(Tick)>;
    /** Divert a packet to the IPI input queue (full emulation). */
    using DivertFn = std::function<void(PacketPtr)>;

    MemoryController(EventQueue &eq, NodeId self, const AddressMap &amap,
                     const ProtocolParams &proto, const MemParams &params);

    void setSend(SendFn fn) { _send = std::move(fn); }
    void setPolicy(const CoherencePolicy *policy) { _policy = policy; }
    const CoherencePolicy *coherencePolicy() const { return _policy; }
    void setTrapStall(TrapStallFn fn) { _trapStall = std::move(fn); }
    void setDivert(DivertFn fn) { _divert = std::move(fn); }

    /** Protocol packet arriving from the network or the local cache. */
    void enqueue(PacketPtr pkt);

    NodeId nodeId() const { return _self; }
    const ProtocolParams &protocol() const { return _proto; }
    StatSet &stats() { return _stats; }
    bool idle() const { return _queue.empty() && !_serviceScheduled; }

    /** Fraction of requests that took the software path (the model's m). */
    double overflowFraction() const;

    /**
     * Telemetry sinks (null = disabled, the default; the hot path pays
     * one pointer test per request). @p worker_set receives the line's
     * worker-set size at each RREQ/WREQ pre-dispatch — the same hook
     * point the LimitLESS meta-state machine uses, so Trap-Always
     * profiling and telemetry see identical populations. @p trap_service
     * receives the Ts cycles of each stall-approximation trap charge.
     */
    void
    setTelemetrySinks(Log2Histogram *worker_set, Log2Histogram *trap_service)
    {
        _wsProfile = worker_set;
        _trapServiceHist = trap_service;
    }

    /**
     * Size of the line's current worker set: hardware pointers plus any
     * software-extended sharers (chain length for the chained scheme).
     * O(sharers); telemetry-only, never on the un-instrumented hot path.
     */
    std::size_t workerSetSize(Addr line) const;

    // ------------------------------------------------------------------
    // Transition-action API: the per-scheme policy units in
    // src/mem/home/ drive the controller through these.
    // ------------------------------------------------------------------

    /** Current simulation time (the controller's event-queue clock). */
    Tick now() const { return _eq.now(); }

    /**
     * Per-line protocol bookkeeping (created on first touch). Servicing
     * one packet consults the same line several times (state, ack
     * counter, pending requester, words), so a one-entry MRU cache
     * fronts the hash map. Entries are never erased and unordered_map
     * references survive rehashing, so the cached pointer cannot
     * dangle.
     */
    HomeLine &
    lineFor(Addr line)
    {
        if (line == _mruLineAddr)
            return *_mruLine;
        HomeLine &hl = _lines.try_emplace(line).first->second;
        _mruLineAddr = line;
        _mruLine = &hl;
        return hl;
    }

    /** Mutable memory words of a line (zero-filled on first touch). */
    LineWords &
    lineWords(Addr line)
    {
        if (line == _mruWordsAddr)
            return *_mruWords;
        LineWords &lw = _memory.try_emplace(line).first->second;
        _mruWordsAddr = line;
        _mruWords = &lw;
        return lw;
    }

    void sendReadData(NodeId to, Addr line, NodeId old_head = invalidNode);
    void sendWriteData(NodeId to, Addr line);
    void sendInv(NodeId to, Addr line);
    void sendBusy(NodeId to, Addr line);
    /** Launch a packet, honouring any in-flight Ts emulation charge. */
    void dispatch(PacketPtr pkt);

    /** Park a mid-transaction request, or BUSY it if the buffer is full. */
    void deferOrBusy(PacketPtr &pkt, HomeLine &hl);
    /** Replay parked requests after a transaction completes. */
    void replayDeferred(HomeLine &hl);

    /** Charge Ts emulation cycles against the in-flight service, on
     *  behalf of @p requester's transaction on @p line. */
    void chargeTrap(Tick cycles, NodeId requester, Addr line);

    /** Hand a packet to the software trap handler (full emulation). */
    void divertToHandler(PacketPtr pkt);

    /** @name Statistics hooks for transition actions. */
    /// @{
    void noteRead() { _statReads += 1; }
    void noteWrite() { _statWrites += 1; }
    void noteEviction() { _statEvictions += 1; }
    void noteStaleAck() { _statStaleAcks += 1; }
    void noteWriteUpdate() { _statWriteUpdates += 1; }
    void noteMigratoryEviction() { _statMigratoryEvictions += 1; }
    /** Trap counters alone (inline paths charge cycles via chargeTrap). */
    void noteReadTrapTaken() { _statReadTraps += 1; }
    void noteWriteTrapTaken() { _statWriteTraps += 1; }
    /// @}

    // ------------------------------------------------------------------
    // Software / monitor access ("the directories are placed in a special
    // region of memory that may be read and written by the processor").
    // ------------------------------------------------------------------

    DirectoryScheme &directory() { return *_dir; }
    const DirectoryScheme &directory() const { return *_dir; }
    /** Non-null only for the LimitLESS protocol. */
    LimitlessDir *limitlessDir() { return _ldir; }
    ChainedDir *chainedDir() { return _chained.get(); }
    SoftwareDirTable &softwareTable() { return _swTable; }
    const SoftwareDirTable &softwareTable() const { return _swTable; }

    /**
     * Cumulative access records for Trap-Always lines (the Section 6
     * profiling extension): unlike the coherence-tracking softwareTable,
     * entries here survive write-gathers, so the profile reflects every
     * processor that ever touched the line.
     */
    SoftwareDirTable &profileTable() { return _profile; }
    const SoftwareDirTable &profileTable() const { return _profile; }

    MemState
    lineState(Addr line) const
    {
        if (line == _mruLineAddr)
            return _mruLine->state;
        auto it = _lines.find(line);
        return it == _lines.end() ? MemState::readOnly : it->second.state;
    }
    void setLineState(Addr line, MemState s) { lineFor(line).state = s; }

    std::uint32_t
    ackCounter(Addr line) const
    {
        if (line == _mruLineAddr)
            return _mruLine->ackCtr;
        auto it = _lines.find(line);
        return it == _lines.end() ? 0 : it->second.ackCtr;
    }
    void setAckCounter(Addr line, std::uint32_t n)
    {
        lineFor(line).ackCtr = n;
    }

    NodeId
    pendingRequester(Addr line) const
    {
        if (line == _mruLineAddr)
            return _mruLine->pending;
        auto it = _lines.find(line);
        return it == _lines.end() ? invalidNode : it->second.pending;
    }
    void setPendingRequester(Addr line, NodeId n)
    {
        lineFor(line).pending = n;
    }

    /** Current memory contents of a line (zero-filled on first touch). */
    const LineWords &readLine(Addr line) { return lineWords(line); }
    void writeLine(Addr line, const std::vector<std::uint64_t> &words);

    /** Trap handler send path (protocol packets launched via IPI). */
    void sendFromHandler(PacketPtr pkt) { _send(std::move(pkt)); }

    const AddressMap &addressMap() const { return _amap; }

    /** Trap-accounting hooks so overflowFraction() covers both modes. */
    void noteReadTrap(Tick cycles);
    void noteWriteTrap(Tick cycles);
    void noteInvSent() { _statInvsSent += 1; }
    void noteWorkerSet(std::size_t n) { _statWorkerSet.sample(n); }

    /**
     * Process a packet directly, bypassing meta-state checks: used by
     * trap handlers that tap a packet (e.g. the profiler) and then let
     * the hardware path do the actual protocol work.
     */
    void processBypassingMeta(PacketPtr pkt);

    /**
     * Serialize the controller's protocol-relevant state (per-line FSM
     * + scratch fields, deferred packets, directory / software-vector /
     * chain contents, memory words) in a deterministic text form. The
     * model checker fingerprints machine states with this; ticks and
     * statistics are deliberately excluded — see docs/CHECKER.md.
     */
    void checkpoint(std::ostream &os) const;

    /** Iterate touched lines (coherence-monitor support). */
    template <typename Fn>
    void
    forEachLine(Fn &&fn) const
    {
        for (const auto &[line, st] : _lines)
            fn(line, st.state);
    }

    /** Iterate the (state, opcode) pairs this controller has fired
     *  (coherence-monitor cross-check against the declared table). */
    template <typename Fn>
    void
    forEachObservedTransition(Fn &&fn) const
    {
        for (std::uint32_t packed : _observed)
            fn(static_cast<std::uint8_t>(packed >> 16),
               static_cast<Opcode>(packed & 0xffff));
    }

  private:
    void scheduleService();
    void service();
    void process(PacketPtr &pkt, bool bypass_meta);

    EventQueue &_eq;
    NodeId _self;
    const AddressMap &_amap;
    ProtocolParams _proto;
    MemParams _params;
    SendFn _send;
    TrapStallFn _trapStall;
    DivertFn _divert;
    const CoherencePolicy *_policy = nullptr;
    const home::HomePolicy *_homePolicy = nullptr;

    std::unique_ptr<DirectoryScheme> _dir;
    LimitlessDir *_ldir = nullptr;          ///< alias into _dir
    std::unique_ptr<ChainedDir> _chained;   ///< chained protocol only
    SoftwareDirTable _swTable;
    SoftwareDirTable _profile;

    std::unordered_map<Addr, HomeLine> _lines;
    std::unordered_map<Addr, LineWords> _memory;
    /** One-entry MRU fronts for the two maps (see lineFor). Addr(-1)
     *  is never a line address, so it is a safe empty sentinel. */
    Addr _mruLineAddr = Addr(-1);
    HomeLine *_mruLine = nullptr;
    Addr _mruWordsAddr = Addr(-1);
    LineWords *_mruWords = nullptr;
    std::unordered_set<std::uint32_t> _observed; ///< fired (state, op)

    Log2Histogram *_wsProfile = nullptr;       ///< telemetry, may be null
    Log2Histogram *_trapServiceHist = nullptr; ///< telemetry, may be null

    std::deque<PacketPtr> _queue;
    bool _serviceScheduled = false;
    Tick _busyUntil = 0;
    Tick _extraDelay = 0; ///< Ts charge for the in-flight service
    /** Transaction id of the packet being processed (0 when untagged):
     *  home-originated packets and trap/invalidation spans inherit it,
     *  so replies launched by transition actions stay attributed to the
     *  request that caused them. */
    std::uint64_t _curTxn = 0;

    StatSet _stats{"mem"};
    Counter &_statRequests;
    Counter &_statReads;
    Counter &_statWrites;
    Counter &_statBusyNacks;
    Counter &_statInvsSent;
    Counter &_statEvictions;
    Counter &_statReadTraps;
    Counter &_statWriteTraps;
    Counter &_statTrapCycles;
    Counter &_statStaleAcks;
    Counter &_statWriteUpdates;
    Counter &_statMigratoryEvictions;
    Distribution &_statWorkerSet;
};

} // namespace limitless

#endif // LIMITLESS_MEM_MEMORY_CONTROLLER_HH
