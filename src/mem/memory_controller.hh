/**
 * @file
 * Memory-side coherence controller: the Figure 2 / Table 2 state machine
 * of the paper, layered over a pluggable directory scheme.
 *
 * One controller per node; it owns the node's slice of globally shared
 * memory (real data words) and the directory entries for lines homed
 * there. Incoming protocol packets are serviced one at a time with a
 * configurable occupancy, which is what makes widely shared lines into
 * hot spots.
 *
 * LimitLESS support: in stall-approximation mode (the paper's evaluation
 * methodology) pointer overflows are emulated inline and charged Ts
 * cycles to both the controller and the home processor. In
 * full-emulation mode overflowed packets are diverted through the IPI
 * interface to a software trap handler (src/kernel/limitless_handler.hh)
 * which manipulates this controller through the software-access methods
 * at the bottom of the class — the "complete access to coherence-related
 * controller state" of paper Section 4.1.
 */

#ifndef LIMITLESS_MEM_MEMORY_CONTROLLER_HH
#define LIMITLESS_MEM_MEMORY_CONTROLLER_HH

#include <array>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>

#include "cache/mem_op.hh"
#include "directory/chained_dir.hh"
#include "directory/directory.hh"
#include "directory/limitless_dir.hh"
#include "kernel/software_dir.hh"
#include "machine/address_map.hh"
#include "machine/coherence_policy.hh"
#include "proto/packet.hh"
#include "proto/protocol_params.hh"
#include "sim/event_queue.hh"
#include "stats/stats.hh"

namespace limitless
{

/** Memory-side line states (paper Table 1). An absent entry is
 *  Read-Only with an empty pointer set (uncached). */
enum class MemState : std::uint8_t
{
    readOnly,         ///< some number of read-only copies (possibly zero)
    readWrite,        ///< exactly one dirty copy
    readTransaction,  ///< holding a read request, update in progress
    writeTransaction, ///< holding a write request, invalidation in progress
    evictTransaction, ///< limited-dir pointer eviction / chained unlink
};

const char *memStateName(MemState s);

/** Controller timing knobs. */
struct MemParams
{
    Tick serviceCycles = 4; ///< occupancy per protocol packet

    /**
     * Requests arriving for a line that is mid-transaction are parked in
     * a small per-line buffer (replayed FIFO when the transaction
     * completes) instead of being BUSY-nacked; only when the buffer is
     * full does the controller nack. Depth 0 recovers the pure
     * nack-and-retry protocol (ablation D4). Without this, heavy read
     * sharing on a limited directory can starve writers indefinitely:
     * readers keep the entry in eviction transactions and every write
     * retry loses the race.
     */
    unsigned deferDepth = 4;
};

/** A line's worth of memory words. */
using LineWords = std::array<std::uint64_t, AddressMap::maxWordsPerLine>;

/** The per-node memory + directory controller. */
class MemoryController
{
  public:
    using SendFn = std::function<void(PacketPtr)>;
    /** Stall the home processor (stall-approximation Ts charge). */
    using TrapStallFn = std::function<void(Tick)>;
    /** Divert a packet to the IPI input queue (full emulation). */
    using DivertFn = std::function<void(PacketPtr)>;

    MemoryController(EventQueue &eq, NodeId self, const AddressMap &amap,
                     const ProtocolParams &proto, const MemParams &params);

    void setSend(SendFn fn) { _send = std::move(fn); }
    void setPolicy(const CoherencePolicy *policy) { _policy = policy; }
    const CoherencePolicy *coherencePolicy() const { return _policy; }
    void setTrapStall(TrapStallFn fn) { _trapStall = std::move(fn); }
    void setDivert(DivertFn fn) { _divert = std::move(fn); }

    /** Protocol packet arriving from the network or the local cache. */
    void enqueue(PacketPtr pkt);

    NodeId nodeId() const { return _self; }
    const ProtocolParams &protocol() const { return _proto; }
    StatSet &stats() { return _stats; }
    bool idle() const { return _queue.empty() && !_serviceScheduled; }

    /** Fraction of requests that took the software path (the model's m). */
    double overflowFraction() const;

    // ------------------------------------------------------------------
    // Software / monitor access ("the directories are placed in a special
    // region of memory that may be read and written by the processor").
    // ------------------------------------------------------------------

    DirectoryScheme &directory() { return *_dir; }
    const DirectoryScheme &directory() const { return *_dir; }
    /** Non-null only for the LimitLESS protocol. */
    LimitlessDir *limitlessDir() { return _ldir; }
    ChainedDir *chainedDir() { return _chained.get(); }
    SoftwareDirTable &softwareTable() { return _swTable; }
    const SoftwareDirTable &softwareTable() const { return _swTable; }

    /**
     * Cumulative access records for Trap-Always lines (the Section 6
     * profiling extension): unlike the coherence-tracking softwareTable,
     * entries here survive write-gathers, so the profile reflects every
     * processor that ever touched the line.
     */
    SoftwareDirTable &profileTable() { return _profile; }
    const SoftwareDirTable &profileTable() const { return _profile; }

    MemState lineState(Addr line) const;
    void setLineState(Addr line, MemState s);
    std::uint32_t ackCounter(Addr line) const;
    void setAckCounter(Addr line, std::uint32_t n);
    NodeId pendingRequester(Addr line) const;
    void setPendingRequester(Addr line, NodeId n);

    /** Current memory contents of a line (zero-filled on first touch). */
    const LineWords &readLine(Addr line);
    void writeLine(Addr line, const std::vector<std::uint64_t> &words);

    /** Trap handler send path (protocol packets launched via IPI). */
    void sendFromHandler(PacketPtr pkt) { _send(std::move(pkt)); }

    const AddressMap &addressMap() const { return _amap; }

    /** Trap-accounting hooks so overflowFraction() covers both modes. */
    void noteReadTrap(Tick cycles);
    void noteWriteTrap(Tick cycles);
    void noteInvSent() { _statInvsSent += 1; }
    void noteWorkerSet(std::size_t n) { _statWorkerSet.sample(n); }

    /**
     * Process a packet directly, bypassing meta-state checks: used by
     * trap handlers that tap a packet (e.g. the profiler) and then let
     * the hardware path do the actual protocol work.
     */
    void processBypassingMeta(PacketPtr pkt);

    /** Iterate touched lines (coherence-monitor support). */
    template <typename Fn>
    void
    forEachLine(Fn &&fn) const
    {
        for (const auto &[line, st] : _lines)
            fn(line, st.state);
    }

  private:
    struct HomeLine
    {
        MemState state = MemState::readOnly;
        std::uint32_t ackCtr = 0;
        NodeId pending = invalidNode;
        bool dataSeen = false;        ///< RT: REPM data arrived
        NodeId evictVictim = invalidNode;
        /** Update-mode write in flight: complete with WACK, stay RO. */
        bool updWrite = false;
        std::uint64_t updOld = 0;
        /** Kernel-injected WUPD: no WACK wanted (fire and forget). */
        bool updSilent = false;
        /** WUPD against a dirty line: apply after the owner's data. */
        bool updApply = false;
        unsigned updWord = 0;
        std::uint8_t updKind = 0;
        std::uint64_t updValue = 0;
        /** RUNC in flight: answer without recording a pointer. */
        bool pendingUncached = false;
        /** Chained-walk bookkeeping. */
        NodeId walkTarget = invalidNode;
        NodeId repcRequester = invalidNode;
        /** Requests parked during a transaction (see MemParams). */
        std::deque<PacketPtr> deferred;
    };

    void scheduleService();
    void service();
    void process(PacketPtr &pkt, bool bypass_meta);
    void processReadOnly(PacketPtr &pkt, HomeLine &hl, bool bypass_meta);
    void processReadWrite(Packet &pkt, HomeLine &hl);
    void processReadTransaction(PacketPtr &pkt, HomeLine &hl);
    void processWriteTransaction(PacketPtr &pkt, HomeLine &hl);
    void processEvictTransaction(PacketPtr &pkt, HomeLine &hl);

    /** Update-mode write service (paper Section 6 extension). */
    void handleWriteUpdate(Packet &pkt, HomeLine &hl);

    /** Park a mid-transaction request, or BUSY it if the buffer is full. */
    void deferOrBusy(PacketPtr &pkt, HomeLine &hl);
    /** Replay parked requests after a transaction completes. */
    void replayDeferred(HomeLine &hl);

    // Chained-protocol variants.
    void processChained(PacketPtr &pkt, HomeLine &hl);
    void chainedReadOnly(PacketPtr &pkt, HomeLine &hl);
    void chainedWalkStep(Addr line, HomeLine &hl, NodeId target);
    void chainedWalkAck(Packet &pkt, HomeLine &hl);

    // Helpers shared by transitions.
    void sendReadData(NodeId to, Addr line, NodeId old_head = invalidNode);
    void sendWriteData(NodeId to, Addr line);
    void sendInv(NodeId to, Addr line);
    void sendBusy(NodeId to, Addr line);
    void dispatch(PacketPtr pkt);
    void startWriteTransaction(Addr line, HomeLine &hl, NodeId requester,
                               const std::vector<NodeId> &to_invalidate);

    // LimitLESS software paths (stall approximation).
    void limitlessReadOverflow(Packet &pkt, HomeLine &hl);
    bool limitlessWriteNeedsTrap(Addr line) const;
    void limitlessWriteTrap(Packet &pkt, HomeLine &hl);
    /** Charge Ts emulation cycles against the in-flight service, on
     *  behalf of @p requester's transaction on @p line. */
    void chargeTrap(Tick cycles, NodeId requester, Addr line);

    HomeLine &lineFor(Addr line);

    EventQueue &_eq;
    NodeId _self;
    const AddressMap &_amap;
    ProtocolParams _proto;
    MemParams _params;
    SendFn _send;
    TrapStallFn _trapStall;
    DivertFn _divert;
    const CoherencePolicy *_policy = nullptr;

    std::unique_ptr<DirectoryScheme> _dir;
    LimitlessDir *_ldir = nullptr;          ///< alias into _dir
    std::unique_ptr<ChainedDir> _chained;   ///< chained protocol only
    SoftwareDirTable _swTable;
    SoftwareDirTable _profile;

    std::unordered_map<Addr, HomeLine> _lines;
    std::unordered_map<Addr, LineWords> _memory;

    std::deque<PacketPtr> _queue;
    bool _serviceScheduled = false;
    Tick _busyUntil = 0;
    Tick _extraDelay = 0; ///< Ts charge for the in-flight service

    StatSet _stats{"mem"};
    Counter &_statRequests;
    Counter &_statReads;
    Counter &_statWrites;
    Counter &_statBusyNacks;
    Counter &_statInvsSent;
    Counter &_statEvictions;
    Counter &_statReadTraps;
    Counter &_statWriteTraps;
    Counter &_statTrapCycles;
    Counter &_statStaleAcks;
    Counter &_statWriteUpdates;
    Counter &_statMigratoryEvictions;
    Distribution &_statWorkerSet;
};

} // namespace limitless

#endif // LIMITLESS_MEM_MEMORY_CONTROLLER_HH
