/**
 * @file
 * Chip-home transition tables for the two-level (--hier) mode, one per
 * directory scheme (TableSide::chip). The chip home is a *home* toward
 * its local caches and a *cache* toward the global home, so every row
 * here composes with the unmodified flat home and cache tables:
 *
 *  - local requests are granted from the chip copy when it suffices,
 *    and otherwise forwarded upward as an ordinary RREQ/WREQ;
 *  - the parent's INV is answered with ACKC (clean chip) or UPDATE
 *    (dirty chip), exactly like a cache, after the chip's own local
 *    fan-out completes;
 *  - each scheme reuses its own pointer economics at the chip level:
 *    limited evicts a local pointer (hChipET), LimitLESS spills to a
 *    chip-local software table and charges Ts — always in the inline
 *    stall-approximation style, independent of the global level's
 *    emulation mode.
 *
 * Update-mode lines (WUPD/MUPD) are not supported below the global
 * home: the simulator routes WUPD/RUNC straight to the global home, and
 * an MUPD reaching a chip home hits an undeclared (state, opcode) pair
 * — a loud engine panic rather than silent wrong sharing.
 */

#include <algorithm>
#include <cassert>
#include <vector>

#include "directory/limited_dir.hh"
#include "directory/limitless_dir.hh"
#include "mem/home/hier_home.hh"
#include "obs/flight_recorder.hh"

namespace limitless
{
namespace home
{

namespace
{

// State indices for table rows ---------------------------------------

constexpr auto hsI = static_cast<std::uint8_t>(ChipState::hInvalid);
constexpr auto hsC = static_cast<std::uint8_t>(ChipState::hCopy);
constexpr auto hsO = static_cast<std::uint8_t>(ChipState::hOwned);
constexpr auto hsFR = static_cast<std::uint8_t>(ChipState::hFillRead);
constexpr auto hsFW = static_cast<std::uint8_t>(ChipState::hFillWrite);
constexpr auto hsFWI =
    static_cast<std::uint8_t>(ChipState::hFillWriteInv);
constexpr auto hsWI = static_cast<std::uint8_t>(ChipState::hWriteInv);
constexpr auto hsR = static_cast<std::uint8_t>(ChipState::hRecall);
constexpr auto hsPI = static_cast<std::uint8_t>(ChipState::hParentInv);
constexpr auto hsET = static_cast<std::uint8_t>(ChipState::hChipET);

// Guards --------------------------------------------------------------

bool
chipDirHasRoom(const ChipCtx &c)
{
    return c.ch.directory().canAdd(c.line(), c.src());
}

/** Chip-level Trap-Always: the line was demoted to the chip software
 *  table without the Trap-On-Write pointer recycle (ablation D1). */
bool
chipTrapAlways(const ChipCtx &c)
{
    return c.ch.limitlessDir()->meta(c.line()) == MetaState::trapAlways;
}

/** The chip has software-extended local state a write must gather. */
bool
chipWriteNeedsTrap(const ChipCtx &c)
{
    return c.ch.softwareTable().has(c.line()) ||
           c.ch.limitlessDir()->meta(c.line()) != MetaState::normal;
}

/** No local copies at all: a parent INV can be answered immediately. */
bool
chipDirEmpty(const ChipCtx &c)
{
    return c.ch.directory().numSharers(c.line()) == 0 &&
           !c.ch.softwareTable().has(c.line());
}

bool
chipDataSeen(const ChipCtx &c)
{
    return c.cl.dataSeen;
}

// Small helpers --------------------------------------------------------

std::vector<NodeId>
localSharers(const ChipCtx &c)
{
    std::vector<NodeId> out;
    c.ch.chipSharers(c.line(), out);
    return out;
}

void
addLocalPointer(ChipCtx &c, NodeId n)
{
    const DirAdd r = c.ch.directory().tryAdd(c.line(), n);
    if (r == DirAdd::overflow)
        panic("chip %u: pointer overflow on a guarded local grant",
              c.ch.nodeId());
}

/** Close the local invalidation window for the pending requester. */
void
stampLocalInvEnd(ChipCtx &c)
{
    if (c.cl.pending != invalidNode)
        FlightRecorder::instance().latency().onInvEnd(
            c.ch.now(), c.cl.pending, c.line());
}

/** Answer the parent's INV: dirty chips write back, clean chips ack
 *  (the chip behaves exactly like a dirty/clean cache). */
void
answerParentInv(ChipCtx &c)
{
    if (c.cl.dirty) {
        c.ch.updateParent(c.line());
        c.cl.dirty = false;
    } else {
        c.ch.ackParent(c.line());
    }
}

// Miss forwarding (hInvalid) ------------------------------------------

void
iRead(ChipCtx &c)
{
    c.ch.noteRead();
    c.cl.pending = c.src();
    c.cl.pendingIsWrite = false;
    c.ch.forwardToParent(c.line(), false);
}

void
iWrite(ChipCtx &c)
{
    c.ch.noteWrite();
    c.cl.pending = c.src();
    c.cl.pendingIsWrite = true;
    c.ch.forwardToParent(c.line(), true);
}

/** Stale directory pointer at the parent crossing our ACKC/UPDATE;
 *  acknowledge regardless (mirrors the cache's inv_spurious). */
void
iSpuriousInv(ChipCtx &c)
{
    c.ch.noteStaleAck();
    c.ch.ackParent(c.line());
}

// Fill completion ------------------------------------------------------

void
frFill(ChipCtx &c)
{
    c.ch.fillFromParent(c.line(), *c.pkt);
    c.cl.dirty = false;
    addLocalPointer(c, c.cl.pending);
    c.ch.grantRead(c.cl.pending, c.line());
    c.cl.pending = invalidNode;
    c.ch.replayDeferred(c.cl);
}

void
fwFill(ChipCtx &c)
{
    c.ch.fillFromParent(c.line(), *c.pkt);
    // Write permission makes the chip the exclusive owner at the global
    // level; the local copy diverges from memory from here on.
    c.cl.dirty = true;
    c.ch.directory().clear(c.line());
    addLocalPointer(c, c.cl.pending);
    c.ch.grantWrite(c.cl.pending, c.line());
    c.cl.pending = invalidNode;
    c.cl.parentInvPending = false;
    c.ch.replayDeferred(c.cl);
}

void
fillBusy(ChipCtx &c)
{
    c.ch.retryParent(c.line());
}

/**
 * A parent INV crossed our in-flight WREQ while the chip still held
 * kept read copies (the upgrading requester's among them): invalidate
 * them all, ack the parent once they drain, then keep waiting for the
 * write data.
 */
void
fwInvLocals(ChipCtx &c)
{
    const Addr line = c.line();
    const std::vector<NodeId> all = localSharers(c);
    assert(!all.empty() && "guard admitted an empty chip");
    c.ch.noteParentInv();
    c.cl.ackCtr = static_cast<std::uint32_t>(all.size());
    for (NodeId n : all)
        c.ch.sendInvLocal(n, line);
    c.ch.directory().clear(line);
    c.ch.softwareTable().free(line);
}

/** Parent INV during a fill with no kept local copies: ack at once. */
void
fwInvAck(ChipCtx &c)
{
    c.ch.noteParentInv();
    c.ch.ackParent(c.line());
}

void
fwiAck(ChipCtx &c)
{
    assert(c.cl.ackCtr > 0 && "acknowledgment counter underflow");
    if (--c.cl.ackCtr != 0)
        return;
    c.ch.ackParent(c.line());
    c.cl.state = ChipState::hFillWrite;
}

// Read-shared chip copy (hCopy) ---------------------------------------

void
cGrantRead(ChipCtx &c)
{
    c.ch.noteRead();
    c.ch.noteLocalGrant();
    addLocalPointer(c, c.src());
    c.ch.grantRead(c.src(), c.line());
}

/** Chip-level Trap-Always read: the chip software table records the
 *  reader and the access is charged Ts (inline stall emulation). */
void
cSoftwareRead(ChipCtx &c)
{
    const Addr line = c.line();
    const NodeId src = c.src();
    c.ch.noteRead();
    c.ch.noteLocalGrant();
    c.ch.softwareTable().addSharer(line, src);
    c.ch.noteReadTrapTaken();
    c.ch.chargeTrap(c.ch.protocol().softwareLatency, src, line);
    c.ch.grantRead(src, line);
}

/** Chip pointer overflow on a read: spill the hardware pointers into
 *  the chip software table (LimitLESS, paper Section 3, applied one
 *  level down) and charge Ts. */
void
cReadOverflowSoftware(ChipCtx &c)
{
    ChipHomeController &ch = c.ch;
    LimitlessDir *ldir = ch.limitlessDir();
    const Addr line = c.line();
    const NodeId src = c.src();
    ch.noteRead();
    ch.noteLocalGrant();
    const DirAdd r = ch.directory().tryAdd(line, src);
    assert(r == DirAdd::overflow && "guard admitted a non-overflow");
    (void)r;

    std::vector<NodeId> spilled;
    ldir->spillPointers(line, spilled);
    ch.softwareTable().addSharers(line, spilled);
    ch.noteReadTrapTaken();
    ch.chargeTrap(ch.protocol().softwareLatency, src, line);

    if (ch.protocol().trapOnWrite) {
        const DirAdd r2 = ch.directory().tryAdd(line, src);
        assert(r2 != DirAdd::overflow);
        (void)r2;
        ldir->setMeta(line, MetaState::trapOnWrite);
    } else {
        ch.softwareTable().addSharer(line, src);
        ldir->setMeta(line, MetaState::trapAlways);
    }
    ch.grantRead(src, line);
}

/** Chip pointer overflow on a read, limited scheme: evict a local
 *  victim pointer first (Dir_i NB economics at the chip level). */
void
cPointerEvict(ChipCtx &c)
{
    const Addr line = c.line();
    const NodeId src = c.src();
    c.ch.noteRead();
    const DirAdd r = c.ch.directory().tryAdd(line, src);
    assert(r == DirAdd::overflow && "guard admitted a non-overflow");
    (void)r;
    auto *ldir = static_cast<LimitedDir *>(&c.ch.directory());
    const NodeId victim = ldir->pickVictim(line);
    c.ch.noteEviction();
    c.cl.evictVictim = victim;
    c.cl.pending = src;
    c.cl.pendingIsWrite = false;
    c.ch.sendInvLocal(victim, line);
}

/**
 * Local write in hCopy, all schemes. Gathers the local sharer set
 * (hardware pointers plus any chip software spill), invalidates the
 * other local copies, and then either grants locally (the chip already
 * owns the line globally: dirty) or upgrades at the parent.
 */
void
cWriteCore(ChipCtx &c)
{
    ChipHomeController &ch = c.ch;
    ChipLine &cl = c.cl;
    const Addr line = c.line();
    const NodeId src = c.src();
    ch.noteWrite();

    const std::vector<NodeId> all = localSharers(c);
    std::vector<NodeId> others;
    for (NodeId n : all)
        if (n != src)
            others.push_back(n);
    const bool hadCopy =
        std::find(all.begin(), all.end(), src) != all.end();
    ch.noteWorkerSet(others.size() + 1);

    // A write gathers any chip software state back into hardware
    // (mirrors the flat write-gather; no-op for non-LimitLESS chips).
    if (LimitlessDir *ldir = ch.limitlessDir()) {
        ch.softwareTable().free(line);
        ldir->setMeta(line, MetaState::normal);
    }

    if (others.empty()) {
        if (cl.dirty) {
            // The chip is the global owner: grant without a parent
            // round trip — the two-level mode's payoff.
            ch.noteLocalGrant();
            ch.directory().clear(line);
            addLocalPointer(c, src);
            ch.grantWrite(src, line);
            cl.state = ChipState::hOwned;
            return;
        }
        // Clean read-shared chip: upgrade at the parent. The requester
        // keeps its read copy (like a cache upgrade) — tracked so a
        // crossing parent INV can still find and kill it.
        cl.pending = src;
        cl.pendingIsWrite = true;
        ch.forwardToParent(line, true);
        ch.directory().clear(line);
        if (hadCopy)
            addLocalPointer(c, src);
        cl.state = ChipState::hFillWrite;
        return;
    }

    cl.pending = src;
    cl.pendingIsWrite = true;
    cl.ackCtr = static_cast<std::uint32_t>(others.size());
    for (NodeId n : others)
        ch.sendInvLocal(n, line);
    ch.directory().clear(line);
    if (hadCopy)
        addLocalPointer(c, src);
    cl.state = ChipState::hWriteInv;
}

/** Chip-level software write-gather (LimitLESS): charge Ts on top of
 *  the common local write path. */
void
cWriteGather(ChipCtx &c)
{
    c.ch.noteWriteTrapTaken();
    c.ch.chargeTrap(c.ch.protocol().softwareLatency, c.src(), c.line());
    cWriteCore(c);
}

/**
 * Parent INV of the read-shared chip copy: fan the invalidation out to
 * every local copy, then answer the parent (dirty chips write back).
 */
void
cParentInv(ChipCtx &c)
{
    ChipHomeController &ch = c.ch;
    const Addr line = c.line();
    ch.noteParentInv();
    const std::vector<NodeId> all = localSharers(c);
    if (all.empty()) {
        answerParentInv(c);
        c.cl.state = ChipState::hInvalid;
        return;
    }
    c.cl.ackCtr = static_cast<std::uint32_t>(all.size());
    for (NodeId n : all)
        ch.sendInvLocal(n, line);
    ch.directory().clear(line);
    ch.softwareTable().free(line);
    if (LimitlessDir *ldir = ch.limitlessDir())
        ldir->setMeta(line, MetaState::normal);
    c.cl.state = ChipState::hParentInv;
}

void
staleAck(ChipCtx &c)
{
    c.ch.noteStaleAck();
}

/** Chained local cache replaced a clean copy: drop its pointer and
 *  grant the replacement. */
void
cReplace(ChipCtx &c)
{
    c.ch.directory().remove(c.line(), c.src());
    c.ch.ackReplace(c.src(), c.line());
}

// Exclusive local owner (hOwned) --------------------------------------

void
startLocalRecall(ChipCtx &c, bool for_write)
{
    ChipHomeController &ch = c.ch;
    ChipLine &cl = c.cl;
    const Addr line = c.line();
    std::vector<NodeId> owner;
    ch.directory().sharers(line, owner);
    assert(owner.size() == 1 && "hOwned without a sole local owner");
    cl.pending = c.src();
    cl.pendingIsWrite = for_write;
    cl.parentInvPending = false;
    cl.dataSeen = false;
    cl.ackCtr = 1;
    ch.sendInvLocal(owner[0], line);
    ch.directory().clear(line);
    cl.state = ChipState::hRecall;
}

void
oRecallRead(ChipCtx &c)
{
    c.ch.noteRead();
    startLocalRecall(c, false);
}

void
oRecallWrite(ChipCtx &c)
{
    c.ch.noteWrite();
    startLocalRecall(c, true);
}

/** Local owner replaced the line: its data folds into the chip copy
 *  and the chip stays a (dirty) read-shared holder at the global
 *  level. */
void
oOwnerReplace(ChipCtx &c)
{
    assert(c.ch.directory().contains(c.line(), c.src()) &&
           "REPM from a non-owner");
    c.ch.storeData(c.line(), *c.pkt);
    c.cl.dirty = true;
    c.ch.directory().clear(c.line());
    c.ch.replayDeferred(c.cl);
}

/** Parent INV while a local cache owns the line: recall the dirty data
 *  first, then write it back upward. */
void
oParentRecall(ChipCtx &c)
{
    ChipHomeController &ch = c.ch;
    ChipLine &cl = c.cl;
    const Addr line = c.line();
    ch.noteParentInv();
    std::vector<NodeId> owner;
    ch.directory().sharers(line, owner);
    assert(owner.size() == 1 && "hOwned without a sole local owner");
    cl.pending = invalidNode;
    cl.parentInvPending = true;
    cl.dataSeen = false;
    cl.ackCtr = 1;
    ch.sendInvLocal(owner[0], line);
    ch.directory().clear(line);
}

// Local recall (hRecall) ----------------------------------------------

void
recallComplete(ChipCtx &c)
{
    ChipHomeController &ch = c.ch;
    ChipLine &cl = c.cl;
    const Addr line = c.line();
    stampLocalInvEnd(c);
    cl.dataSeen = false;
    if (cl.parentInvPending) {
        // The recall was (or became) parent-driven: write the recalled
        // data back. Any local request that merged into this recall
        // restarts as a plain miss.
        answerParentInv(c);
        cl.parentInvPending = false;
        if (cl.pending != invalidNode) {
            ch.forwardToParent(line, cl.pendingIsWrite);
            cl.state = cl.pendingIsWrite ? ChipState::hFillWrite
                                         : ChipState::hFillRead;
        } else {
            cl.state = ChipState::hInvalid;
            ch.replayDeferred(cl);
        }
        return;
    }
    assert(cl.pending != invalidNode);
    addLocalPointer(c, cl.pending);
    if (cl.pendingIsWrite) {
        ch.noteLocalGrant();
        ch.grantWrite(cl.pending, line);
        cl.state = ChipState::hOwned;
    } else {
        ch.noteLocalGrant();
        ch.grantRead(cl.pending, line);
        cl.state = ChipState::hCopy;
    }
    cl.pending = invalidNode;
    ch.replayDeferred(cl);
}

/** The recalled owner writes back through the INV (UPDATE). */
void
rUpdate(ChipCtx &c)
{
    c.ch.storeData(c.line(), *c.pkt);
    c.cl.dirty = true;
    assert(c.cl.ackCtr > 0 && "acknowledgment counter underflow");
    if (--c.cl.ackCtr == 0)
        recallComplete(c);
}

/** The owner's replacement crossed our INV: take the data; the ACKC
 *  answering the INV closes the recall (ack discipline). */
void
rCrossedReplace(ChipCtx &c)
{
    c.ch.storeData(c.line(), *c.pkt);
    c.cl.dirty = true;
    c.cl.dataSeen = true;
}

void
rAckAfterData(ChipCtx &c)
{
    assert(c.cl.ackCtr > 0 && "acknowledgment counter underflow");
    if (--c.cl.ackCtr == 0)
        recallComplete(c);
}

/** Parent INV crossing an in-flight local recall: remember to answer
 *  the parent when the recall drains. */
void
rParentInv(ChipCtx &c)
{
    c.ch.noteParentInv();
    c.cl.parentInvPending = true;
}

// Local write fan-out (hWriteInv) -------------------------------------

void
wiAck(ChipCtx &c)
{
    ChipHomeController &ch = c.ch;
    ChipLine &cl = c.cl;
    const Addr line = c.line();
    assert(cl.ackCtr > 0 && "acknowledgment counter underflow");
    if (--cl.ackCtr != 0)
        return;
    stampLocalInvEnd(c);
    if (cl.parentInvPending) {
        // A parent INV arrived mid-fan-out: the chip lost the line
        // globally, so answer the parent and restart the local write as
        // an upgrade miss.
        answerParentInv(c);
        cl.parentInvPending = false;
        ch.directory().clear(line);
        ch.forwardToParent(line, true);
        cl.state = ChipState::hFillWrite;
        return;
    }
    if (cl.dirty) {
        // Global owner already: grant locally.
        ch.noteLocalGrant();
        ch.directory().clear(line);
        addLocalPointer(c, cl.pending);
        ch.grantWrite(cl.pending, line);
        cl.pending = invalidNode;
        ch.replayDeferred(cl);
        cl.state = ChipState::hOwned;
        return;
    }
    ch.forwardToParent(line, true);
    cl.state = ChipState::hFillWrite;
}

/** Parent INV crossing the local write fan-out: extend the fan-out to
 *  the kept requester copy and remember to answer the parent. */
void
wiParentInv(ChipCtx &c)
{
    ChipHomeController &ch = c.ch;
    const Addr line = c.line();
    ch.noteParentInv();
    c.cl.parentInvPending = true;
    const std::vector<NodeId> extra = localSharers(c);
    for (NodeId n : extra)
        ch.sendInvLocal(n, line);
    c.cl.ackCtr += static_cast<std::uint32_t>(extra.size());
    ch.directory().clear(line);
}

// Parent invalidation fan-out (hParentInv) ----------------------------

void
piAck(ChipCtx &c)
{
    ChipHomeController &ch = c.ch;
    ChipLine &cl = c.cl;
    const Addr line = c.line();
    assert(cl.ackCtr > 0 && "acknowledgment counter underflow");
    if (--cl.ackCtr != 0)
        return;
    stampLocalInvEnd(c);
    answerParentInv(c);
    if (cl.pending != invalidNode) {
        // A local request merged into this fan-out (hChipET crossing):
        // restart it as a plain miss.
        ch.forwardToParent(line, cl.pendingIsWrite);
        cl.state = cl.pendingIsWrite ? ChipState::hFillWrite
                                     : ChipState::hFillRead;
        return;
    }
    cl.state = ChipState::hInvalid;
    ch.replayDeferred(cl);
}

// Chip pointer eviction (hChipET, limited scheme) ---------------------

void
etComplete(ChipCtx &c)
{
    ChipHomeController &ch = c.ch;
    ChipLine &cl = c.cl;
    const Addr line = c.line();
    ch.directory().remove(line, cl.evictVictim);
    cl.evictVictim = invalidNode;
    addLocalPointer(c, cl.pending);
    stampLocalInvEnd(c);
    ch.noteLocalGrant();
    ch.grantRead(cl.pending, line);
    cl.pending = invalidNode;
    ch.replayDeferred(cl);
}

/** Parent INV crossing a chip pointer eviction: widen the fan-out to
 *  every remaining local copy and fall into hParentInv (the waiting
 *  reader restarts as a miss once the parent is answered). */
void
etParentInv(ChipCtx &c)
{
    ChipHomeController &ch = c.ch;
    ChipLine &cl = c.cl;
    const Addr line = c.line();
    ch.noteParentInv();
    std::vector<NodeId> remaining = localSharers(c);
    remaining.erase(std::remove(remaining.begin(), remaining.end(),
                                cl.evictVictim),
                    remaining.end());
    for (NodeId n : remaining)
        ch.sendInvLocal(n, line);
    // The victim's ACKC (for the eviction INV) still counts.
    cl.ackCtr = static_cast<std::uint32_t>(remaining.size()) + 1;
    cl.evictVictim = invalidNode;
    ch.directory().clear(line);
    ch.softwareTable().free(line);
}

// Flow control ---------------------------------------------------------

void
cDefer(ChipCtx &c)
{
    c.ch.deferOrBusy(c.pkt, c.cl);
}

// Row-block builders ---------------------------------------------------

void
addChipDeferRows(ChipTable &t, std::uint8_t state)
{
    t.add(state, Opcode::RREQ, "defer", cDefer, state);
    t.add(state, Opcode::WREQ, "defer", cDefer, state);
}

/** Rows shared by every scheme's chip table. */
void
addChipCoreRows(ChipTable &t)
{
    t.add(hsI, Opcode::RREQ, "i_read", iRead, hsFR);
    t.add(hsI, Opcode::WREQ, "i_write", iWrite, hsFW);
    t.add(hsI, Opcode::INV, "i_spurious_inv", iSpuriousInv, hsI);

    t.add(hsFR, Opcode::RDATA, "fr_fill", frFill, hsC);
    t.add(hsFR, Opcode::BUSY, "fr_busy", fillBusy, hsFR);
    addChipDeferRows(t, hsFR);

    t.add(hsFW, Opcode::WDATA, "fw_fill", fwFill, hsO);
    t.add(hsFW, Opcode::BUSY, "fw_busy", fillBusy, hsFW);
    t.add(hsFW, Opcode::INV, "fw_inv_ack", chipDirEmpty,
          "chip_dir_empty", fwInvAck, hsFW);
    t.add(hsFW, Opcode::INV, "fw_inv_locals", fwInvLocals, hsFWI);
    addChipDeferRows(t, hsFW);

    t.add(hsFWI, Opcode::ACKC, "fwi_ack", fwiAck, dynamicNextState);
    t.add(hsFWI, Opcode::BUSY, "fwi_busy", fillBusy, hsFWI);
    addChipDeferRows(t, hsFWI);

    t.add(hsC, Opcode::INV, "c_parent_inv", cParentInv,
          dynamicNextState);
    t.add(hsC, Opcode::ACKC, "c_stale_ack", staleAck, hsC);

    t.add(hsO, Opcode::RREQ, "o_recall_read", oRecallRead,
          dynamicNextState);
    t.add(hsO, Opcode::WREQ, "o_recall_write", oRecallWrite,
          dynamicNextState);
    t.add(hsO, Opcode::REPM, "o_owner_replace", oOwnerReplace, hsC);
    t.add(hsO, Opcode::INV, "o_parent_recall", oParentRecall, hsR);

    t.add(hsR, Opcode::UPDATE, "r_update", rUpdate, dynamicNextState);
    t.add(hsR, Opcode::REPM, "r_crossed_replace", rCrossedReplace, hsR);
    t.add(hsR, Opcode::ACKC, "r_ack_after_data", chipDataSeen,
          "chip_data_seen", rAckAfterData, dynamicNextState);
    t.add(hsR, Opcode::ACKC, "r_stale_ack", staleAck, hsR);
    t.add(hsR, Opcode::INV, "r_parent_inv", rParentInv, hsR);
    addChipDeferRows(t, hsR);

    t.add(hsWI, Opcode::ACKC, "wi_ack", wiAck, dynamicNextState);
    t.add(hsWI, Opcode::INV, "wi_parent_inv", wiParentInv, hsWI);
    addChipDeferRows(t, hsWI);

    t.add(hsPI, Opcode::ACKC, "pi_ack", piAck, dynamicNextState);
    addChipDeferRows(t, hsPI);
}

/** Chained local caches notify clean replacements (REPC) and those can
 *  cross any in-flight chip transaction; grant immediately in every
 *  state a stale copy could still be draining from. */
void
addChipRepcRows(ChipTable &t)
{
    t.add(hsI, Opcode::REPC, "i_replace", cReplace, hsI);
    t.add(hsC, Opcode::REPC, "c_replace", cReplace, hsC);
    t.add(hsFR, Opcode::REPC, "fr_replace", cReplace, hsFR);
    t.add(hsFW, Opcode::REPC, "fw_replace", cReplace, hsFW);
    t.add(hsFWI, Opcode::REPC, "fwi_replace", cReplace, hsFWI);
    t.add(hsWI, Opcode::REPC, "wi_replace", cReplace, hsWI);
    t.add(hsR, Opcode::REPC, "r_replace", cReplace, hsR);
    t.add(hsPI, Opcode::REPC, "pi_replace", cReplace, hsPI);
}

} // namespace

const HierPolicy &
fullMapChipPolicy()
{
    static const HierPolicy policy = [] {
        static ChipTable t("full-map", ProtocolKind::fullMap,
                           TableSide::chip, chipSideStateName);
        t.add(hsC, Opcode::RREQ, "c_grant_read", cGrantRead, hsC);
        t.add(hsC, Opcode::WREQ, "c_write", cWriteCore,
              dynamicNextState);
        addChipCoreRows(t);
        t.registerSelf();
        return HierPolicy{&t};
    }();
    return policy;
}

const HierPolicy &
limitedChipPolicy()
{
    static const HierPolicy policy = [] {
        static ChipTable t("limited", ProtocolKind::limited,
                           TableSide::chip, chipSideStateName);
        t.add(hsC, Opcode::RREQ, "c_grant_read", chipDirHasRoom,
              "chip_dir_has_room", cGrantRead, hsC);
        t.add(hsC, Opcode::RREQ, "c_ptr_evict", cPointerEvict, hsET);
        t.add(hsC, Opcode::WREQ, "c_write", cWriteCore,
              dynamicNextState);
        addChipCoreRows(t);
        t.add(hsET, Opcode::ACKC, "et_complete", etComplete, hsC);
        t.add(hsET, Opcode::INV, "et_parent_inv", etParentInv, hsPI);
        addChipDeferRows(t, hsET);
        t.registerSelf();
        return HierPolicy{&t};
    }();
    return policy;
}

const HierPolicy &
limitlessChipPolicy()
{
    static const HierPolicy policy = [] {
        static ChipTable t("limitless", ProtocolKind::limitless,
                           TableSide::chip, chipSideStateName);
        t.add(hsC, Opcode::RREQ, "c_sw_read", chipTrapAlways,
              "chip_trap_always", cSoftwareRead, hsC);
        t.add(hsC, Opcode::RREQ, "c_grant_read", chipDirHasRoom,
              "chip_dir_has_room", cGrantRead, hsC);
        t.add(hsC, Opcode::RREQ, "c_overflow_sw", cReadOverflowSoftware,
              hsC);
        t.add(hsC, Opcode::WREQ, "c_write_gather", chipWriteNeedsTrap,
              "chip_write_needs_trap", cWriteGather, dynamicNextState);
        t.add(hsC, Opcode::WREQ, "c_write", cWriteCore,
              dynamicNextState);
        addChipCoreRows(t);
        t.registerSelf();
        return HierPolicy{&t};
    }();
    return policy;
}

const HierPolicy &
chainedChipPolicy()
{
    static const HierPolicy policy = [] {
        static ChipTable t("chained", ProtocolKind::chained,
                           TableSide::chip, chipSideStateName);
        t.add(hsC, Opcode::RREQ, "c_grant_read", cGrantRead, hsC);
        t.add(hsC, Opcode::WREQ, "c_write", cWriteCore,
              dynamicNextState);
        addChipCoreRows(t);
        addChipRepcRows(t);
        t.registerSelf();
        return HierPolicy{&t};
    }();
    return policy;
}

const HierPolicy &
hierChipPolicyFor(ProtocolKind kind)
{
    switch (kind) {
      case ProtocolKind::fullMap:
        return fullMapChipPolicy();
      case ProtocolKind::limited:
        return limitedChipPolicy();
      case ProtocolKind::limitless:
        return limitlessChipPolicy();
      case ProtocolKind::chained:
        return chainedChipPolicy();
      case ProtocolKind::privateOnly:
        break;
    }
    panic("no chip-home policy for protocol kind %d",
          static_cast<int>(kind));
}

} // namespace home

void
registerAllHierTables()
{
    home::fullMapChipPolicy();
    home::limitedChipPolicy();
    home::limitlessChipPolicy();
    home::chainedChipPolicy();
}

} // namespace limitless
