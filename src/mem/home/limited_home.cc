/**
 * @file
 * Limited-directory (Dir_i NB) home policy, paper Section 2.2: i
 * hardware pointers and no broadcast. A read that overflows the pointer
 * array evicts a victim copy first (Evict-Transaction) and recycles its
 * pointer — the eviction traffic that makes Dir_i NB fall off a cliff on
 * widely shared data (paper Figure 7).
 */

#include <cassert>

#include "directory/limited_dir.hh"
#include "mem/home/home_actions.hh"
#include "mem/memory_controller.hh"
#include "proto/states.hh"

namespace limitless
{
namespace home
{

namespace
{

/**
 * Dir_i NB pointer eviction: invalidate a victim copy, then grant the
 * pointer to the new reader once its ACKC arrives (etComplete).
 */
void
roPointerEvict(HomeCtx &c)
{
    const Addr line = c.line();
    const NodeId src = c.src();
    c.mc.noteRead();
    // Replays the original control flow: the failed tryAdd is what
    // records the ptr_overflow trace event.
    const DirAdd r = c.mc.directory().tryAdd(line, src);
    assert(r == DirAdd::overflow && "guard admitted a non-overflow");
    (void)r;
    auto *ldir = static_cast<LimitedDir *>(&c.mc.directory());
    const NodeId victim = ldir->pickVictim(line);
    c.mc.noteEviction();
    c.hl.evictVictim = victim;
    c.hl.pending = src;
    c.mc.sendInv(victim, line);
}

} // namespace

const HomePolicy &
limitedHomePolicy()
{
    static const HomePolicy policy = [] {
        static HomeTable t("limited", ProtocolKind::limited,
                           TableSide::home, homeStateName);
        t.add(stRO, Opcode::RREQ, "ro_grant_read", dirHasRoom,
              "dir_has_room", grantRead, stRO);
        t.add(stRO, Opcode::RREQ, "ro_ptr_evict", roPointerEvict, stET);
        t.add(stRO, Opcode::WREQ, "ro_write", roWrite, dynamicNextState);
        addRoCommonRows(t);
        addRwRows(t, rwRead, rwWrite);
        addRtRows(t);
        addWtRows(t);
        addEtRows(t);
        t.registerSelf();
        return HomePolicy{&t, nullptr};
    }();
    return policy;
}

} // namespace home
} // namespace limitless
