/**
 * @file
 * LimitLESS home policy (paper Sections 3–4): hardware pointer rows
 * identical to the limited scheme until overflow, then software.
 *
 * Two emulation modes share one table. In stall-approximation mode (the
 * paper's evaluation methodology, Section 5.1) the overflow rows emulate
 * the trap inline and charge Ts cycles; in full-emulation mode the
 * preDispatch hook implements the meta-state machine of paper Table 4 —
 * Trans-In-Progress interlocks, Trap-On-Write, Trap-Always — and diverts
 * trapped packets through the IPI interface to the software handler in
 * src/kernel/limitless_handler.cc, which re-enters the hardware path via
 * processBypassingMeta().
 */

#include <algorithm>
#include <cassert>

#include "directory/limitless_dir.hh"
#include "machine/coherence_policy.hh"
#include "mem/home/home_actions.hh"
#include "mem/memory_controller.hh"
#include "proto/states.hh"

namespace limitless
{
namespace home
{

namespace
{

// Guards -------------------------------------------------------------

/** Stall-approximation Trap-Always ablation: once a line has been
 *  demoted to software, every access traps. */
bool
trapAlwaysInline(const HomeCtx &c)
{
    return c.mc.protocol().limitlessMode == LimitlessMode::stallApprox &&
           c.mc.limitlessDir()->meta(c.line()) == MetaState::trapAlways;
}

/** The line has software-extended state a write must gather. */
bool
writeNeedsTrap(const HomeCtx &c)
{
    return c.mc.softwareTable().has(c.line()) ||
           c.mc.limitlessDir()->meta(c.line()) != MetaState::normal;
}

bool
stallApproxMode(const HomeCtx &c)
{
    return c.mc.protocol().limitlessMode == LimitlessMode::stallApprox;
}

// Actions ------------------------------------------------------------

/** Trap-Always read, emulated inline: software records the reader. */
void
roSoftwareRead(HomeCtx &c)
{
    const Addr line = c.line();
    const NodeId src = c.src();
    c.mc.noteRead();
    c.mc.softwareTable().addSharer(line, src);
    c.mc.profileTable().addSharer(line, src);
    c.mc.noteReadTrapTaken();
    c.mc.chargeTrap(c.mc.protocol().softwareLatency, src, line);
    c.mc.sendReadData(src, line);
}

/**
 * Pointer-overflow read, stall approximation: spill the hardware
 * pointers into the software table (or FIFO-evict on migratory lines)
 * and charge Ts.
 */
void
roReadOverflowSoftware(HomeCtx &c)
{
    MemoryController &mc = c.mc;
    LimitlessDir *ldir = mc.limitlessDir();
    const Addr line = c.line();
    const NodeId src = c.src();
    mc.noteRead();
    // The failed tryAdd records the ptr_overflow trace event, exactly as
    // the pre-table control flow did.
    const DirAdd r = mc.directory().tryAdd(line, src);
    assert(r == DirAdd::overflow && "guard admitted a non-overflow");
    (void)r;

    // Migratory lines (Section 6): the handler evicts the oldest pointer
    // FIFO instead of spilling a bit vector — the worker-set is about to
    // move on anyway, so a full map would be stale the moment it was
    // allocated.
    if (mc.coherencePolicy() && mc.coherencePolicy()->isMigratory(line)) {
        std::vector<NodeId> hw;
        ldir->sharers(line, hw);
        assert(!hw.empty());
        // Oldest remote pointer (slot 0; sharers() lists the local bit
        // first when set, and the local copy is never the right victim
        // for migrating data).
        NodeId victim = hw[0];
        if (victim == mc.nodeId() && hw.size() > 1)
            victim = hw[1];
        mc.noteMigratoryEviction();
        mc.chargeTrap(mc.protocol().softwareLatency, src, line);
        c.hl.state = MemState::evictTransaction;
        c.hl.evictVictim = victim;
        c.hl.pending = src;
        mc.sendInv(victim, line);
        return;
    }

    std::vector<NodeId> spilled;
    ldir->spillPointers(line, spilled);
    mc.softwareTable().addSharers(line, spilled);
    mc.noteReadTrapTaken();
    mc.chargeTrap(mc.protocol().softwareLatency, src, line);

    if (mc.protocol().trapOnWrite) {
        // Trap-On-Write optimization: the emptied pointer array lets the
        // controller absorb further reads in hardware.
        const DirAdd r2 = mc.directory().tryAdd(line, src);
        assert(r2 != DirAdd::overflow);
        (void)r2;
        ldir->setMeta(line, MetaState::trapOnWrite);
    } else {
        // Ablation D1: leave the line fully software-handled.
        mc.softwareTable().addSharer(line, src);
        ldir->setMeta(line, MetaState::trapAlways);
    }
    mc.sendReadData(src, line);
}

/** Pointer-overflow read, full emulation: interlock and divert. */
void
roReadOverflowDivert(HomeCtx &c)
{
    MemoryController &mc = c.mc;
    const Addr line = c.line();
    const NodeId src = c.src();
    mc.noteRead();
    const DirAdd r = mc.directory().tryAdd(line, src);
    assert(r == DirAdd::overflow && "guard admitted a non-overflow");
    (void)r;
    assert(!c.bypassMeta && "trap handler must not overflow the pointers");
    mc.limitlessDir()->setMeta(line, MetaState::transInProgress);
    mc.divertToHandler(std::move(c.pkt));
}

/** Software write-gather, emulated inline (stall approximation). */
void
roWriteGather(HomeCtx &c)
{
    MemoryController &mc = c.mc;
    LimitlessDir *ldir = mc.limitlessDir();
    const Addr line = c.line();
    const NodeId src = c.src();
    mc.noteWrite();

    std::vector<NodeId> all;
    ldir->sharers(line, all);
    mc.softwareTable().sharers(line, all);
    std::sort(all.begin(), all.end());
    all.erase(std::unique(all.begin(), all.end()), all.end());
    std::vector<NodeId> others;
    for (NodeId n : all)
        if (n != src)
            others.push_back(n);
    mc.noteWorkerSet(others.size() + 1);

    // Trap-Always lines stay software-handled (profiling / ablation D1)
    // and keep accumulating their access profile across writes.
    const bool sticky = ldir->meta(line) == MetaState::trapAlways;
    if (sticky) {
        mc.profileTable().addSharers(line, all);
        mc.profileTable().addSharer(line, src);
    }
    mc.softwareTable().free(line);
    ldir->clear(line);
    ldir->setMeta(line,
                  sticky ? MetaState::trapAlways : MetaState::normal);
    const DirAdd r = ldir->tryAdd(line, src);
    assert(r != DirAdd::overflow);
    (void)r;

    mc.noteWriteTrapTaken();
    mc.chargeTrap(mc.protocol().softwareLatency, src, line);
    startWriteTransaction(c, src, others);
}

/**
 * Trap-Always lines are software-handled even when exclusively owned:
 * the request still goes through the normal ownership transfer, but the
 * access is recorded and charged Ts (stall-approximation path; full
 * emulation diverts before the FSM).
 */
void
profileTrapAlways(HomeCtx &c)
{
    if (!trapAlwaysInline(c))
        return;
    c.mc.profileTable().addSharer(c.line(), c.src());
    c.mc.noteReadTrapTaken();
    c.mc.chargeTrap(c.mc.protocol().softwareLatency, c.src(), c.line());
}

void
rwReadProfiled(HomeCtx &c)
{
    profileTrapAlways(c);
    rwRead(c);
}

void
rwWriteProfiled(HomeCtx &c)
{
    profileTrapAlways(c);
    rwWrite(c);
}

// Full-emulation meta-state machine ----------------------------------

/**
 * Paper Table 4, run before the FSM proper: Trans-In-Progress lines
 * interlock (BUSY) their requests; Trap-On-Write / Trap-Always packets
 * are diverted to the software handler. Returns true when the packet
 * was consumed. The stall approximation emulates traps inline and never
 * leaves Normal-mode processing windows.
 */
bool
limitlessPreDispatch(HomeCtx &c)
{
    MemoryController &mc = c.mc;
    LimitlessDir *ldir = mc.limitlessDir();
    if (!ldir || c.bypassMeta ||
        mc.protocol().limitlessMode != LimitlessMode::fullEmulation)
        return false;
    const Addr line = c.line();
    const Opcode op = c.pkt->opcode;
    const MetaState meta = ldir->meta(line);
    if (meta == MetaState::transInProgress) {
        if (opcodeIsHomeRequest(op)) {
            mc.sendBusy(c.src(), line);
            return true;
        }
        panic("home %u: response %s for interlocked line %#llx",
              mc.nodeId(), opcodeName(op), (unsigned long long)line);
    }
    const bool trap_write =
        meta == MetaState::trapOnWrite &&
        (op == Opcode::WREQ || op == Opcode::UPDATE ||
         op == Opcode::REPM);
    if (meta == MetaState::trapAlways || trap_write) {
        if (op == Opcode::WREQ)
            mc.noteWrite();
        else if (op == Opcode::RREQ)
            mc.noteRead();
        ldir->setMeta(line, MetaState::transInProgress);
        mc.divertToHandler(std::move(c.pkt));
        return true;
    }
    return false;
}

} // namespace

const HomePolicy &
limitlessHomePolicy()
{
    static const HomePolicy policy = [] {
        static HomeTable t("limitless", ProtocolKind::limitless,
                           TableSide::home, homeStateName);
        t.add(stRO, Opcode::RREQ, "ro_sw_read", trapAlwaysInline,
              "trap_always_inline", roSoftwareRead, stRO);
        t.add(stRO, Opcode::RREQ, "ro_grant_read", dirHasRoom,
              "dir_has_room", grantRead, stRO);
        t.add(stRO, Opcode::RREQ, "ro_overflow_sw", stallApproxMode,
              "stall_approx", roReadOverflowSoftware, dynamicNextState);
        t.add(stRO, Opcode::RREQ, "ro_overflow_trap",
              roReadOverflowDivert, dynamicNextState);
        t.add(stRO, Opcode::WREQ, "ro_write_gather", writeNeedsTrap,
              "write_needs_trap", roWriteGather, dynamicNextState);
        t.add(stRO, Opcode::WREQ, "ro_write", roWrite, dynamicNextState);
        addRoCommonRows(t);
        addRwRows(t, rwReadProfiled, rwWriteProfiled);
        addRtRows(t);
        addWtRows(t);
        addEtRows(t);
        t.registerSelf();
        return HomePolicy{&t, limitlessPreDispatch};
    }();
    return policy;
}

} // namespace home
} // namespace limitless
