/**
 * @file
 * Private-only home policy: the no-shared-caching baseline. Only the
 * home node ever caches a line (remote accesses arrive as RUNC / WUPD),
 * so the full-map directory backing it can never overflow; the table is
 * structurally the full-map one, dominated in practice by the
 * uncached-read and write-update rows.
 */

#include "mem/home/home_actions.hh"
#include "proto/states.hh"

namespace limitless
{
namespace home
{

const HomePolicy &
privateHomePolicy()
{
    static const HomePolicy policy = [] {
        static HomeTable t("private", ProtocolKind::privateOnly,
                           TableSide::home, homeStateName);
        t.add(stRO, Opcode::RREQ, "ro_grant_read", grantRead, stRO);
        t.add(stRO, Opcode::WREQ, "ro_write", roWrite, dynamicNextState);
        addRoCommonRows(t);
        addRwRows(t, rwRead, rwWrite);
        addRtRows(t);
        addWtRows(t);
        t.registerSelf();
        return HomePolicy{&t, nullptr};
    }();
    return policy;
}

} // namespace home
} // namespace limitless
