/**
 * @file
 * Per-scheme home-node policy units: each directory scheme's home-side
 * protocol is a guarded-action transition table over HomeCtx (see
 * src/proto/protocol_table.hh), built once on first use and registered
 * with the process-wide table registry.
 *
 * The policy accessors below return immortal singletons; the
 * MemoryController picks one at construction and its process() becomes a
 * single table dispatch. The LimitLESS policy additionally carries a
 * preDispatch hook for the full-emulation meta-state checks, which must
 * run before the FSM proper (a diverted packet never reaches the table).
 */

#ifndef LIMITLESS_MEM_HOME_HOME_POLICY_HH
#define LIMITLESS_MEM_HOME_HOME_POLICY_HH

#include "mem/home/home_line.hh"
#include "proto/packet.hh"
#include "proto/protocol_table.hh"

namespace limitless
{

class MemoryController;

namespace home
{

/**
 * Dispatch context for one home-side packet: the controller, the packet
 * (by reference to the owning pointer — defer/divert actions move it
 * out), and the line's bookkeeping. Actions that move the packet must
 * capture line/src first.
 */
struct HomeCtx
{
    MemoryController &mc;
    PacketPtr &pkt;
    HomeLine &hl;
    bool bypassMeta; ///< trap-handler re-entry (processBypassingMeta)

    Addr line() const { return pkt->addr(); }
    NodeId src() const { return pkt->src; }

    /** Engine hook: apply a transition's static next state. */
    void
    setState(std::uint8_t s)
    {
        hl.state = static_cast<MemState>(s);
    }
};

using HomeTable = TransitionTable<HomeCtx>;

/** One scheme's home side: its table plus an optional pre-table hook
 *  (returns true when it consumed the packet). */
struct HomePolicy
{
    const HomeTable *table;
    bool (*preDispatch)(HomeCtx &);
};

const HomePolicy &fullMapHomePolicy();
const HomePolicy &limitedHomePolicy();
const HomePolicy &limitlessHomePolicy();
const HomePolicy &chainedHomePolicy();
const HomePolicy &privateHomePolicy();

/** The policy singleton for @p kind (builds + registers it on first use). */
const HomePolicy &homePolicyFor(ProtocolKind kind);

} // namespace home
} // namespace limitless

#endif // LIMITLESS_MEM_HOME_HOME_POLICY_HH
