/**
 * @file
 * Two-level (--hier) chip-home policy units: each directory scheme's
 * chip-side protocol is a guarded-action transition table over ChipCtx,
 * registered with the process-wide registry as TableSide::chip. The
 * global home side is deliberately untouched — a chip home presents
 * itself to the parent as an ordinary cache, so every scheme's existing
 * home table (including the LimitLESS meta-state machine and software
 * spill) composes with the chip level unchanged.
 *
 * The private-only scheme has no chip table: without read sharing there
 * is nothing to delegate, so --hier routes every request straight to
 * the global home and the mode degenerates to flat by construction.
 */

#ifndef LIMITLESS_MEM_HOME_HIER_HOME_HH
#define LIMITLESS_MEM_HOME_HIER_HOME_HH

#include "hier/chip_home.hh"
#include "proto/packet.hh"
#include "proto/protocol_table.hh"

namespace limitless
{
namespace home
{

/** Dispatch context for one chip-home packet (mirrors HomeCtx). */
struct ChipCtx
{
    ChipHomeController &ch;
    PacketPtr &pkt;
    ChipLine &cl;

    Addr line() const { return pkt->addr(); }
    NodeId src() const { return pkt->src; }

    /** Engine hook: apply a transition's static next state. */
    void
    setState(std::uint8_t s)
    {
        cl.state = static_cast<ChipState>(s);
    }
};

using ChipTable = TransitionTable<ChipCtx>;

/** One scheme's chip side. */
struct HierPolicy
{
    const ChipTable *table;
};

const HierPolicy &fullMapChipPolicy();
const HierPolicy &limitedChipPolicy();
const HierPolicy &limitlessChipPolicy();
const HierPolicy &chainedChipPolicy();

/** The chip policy singleton for @p kind (private-only has none and
 *  panics — the machine never instantiates a chip home for it). */
const HierPolicy &hierChipPolicyFor(ProtocolKind kind);

} // namespace home

/**
 * Build every scheme's chip-side table so the registry is complete.
 * Kept separate from registerAllProtocolTables(): the flat table dump
 * (and its golden file) must not change when the hier code is linked
 * in, so --dump-protocol-table builds only the flat tables and
 * --dump-hier-table builds only these.
 */
void registerAllHierTables();

} // namespace limitless

#endif // LIMITLESS_MEM_HOME_HIER_HOME_HH
