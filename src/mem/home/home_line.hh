/**
 * @file
 * Per-line home-node bookkeeping shared by every directory scheme: the
 * FSM state, the acknowledgment counter, the pending requester and the
 * transaction-scoped scratch fields the per-scheme policy units
 * manipulate. One HomeLine per touched line, owned by the
 * MemoryController.
 */

#ifndef LIMITLESS_MEM_HOME_HOME_LINE_HH
#define LIMITLESS_MEM_HOME_HOME_LINE_HH

#include <cstdint>
#include <deque>

#include "proto/packet.hh"
#include "proto/states.hh"
#include "sim/types.hh"

namespace limitless
{

/** The home side's per-line protocol state. */
struct HomeLine
{
    MemState state = MemState::readOnly;
    std::uint32_t ackCtr = 0;
    NodeId pending = invalidNode;
    bool dataSeen = false;        ///< RT: REPM data arrived
    NodeId evictVictim = invalidNode;
    /** Update-mode write in flight: complete with WACK, stay RO. */
    bool updWrite = false;
    std::uint64_t updOld = 0;
    /** Kernel-injected WUPD: no WACK wanted (fire and forget). */
    bool updSilent = false;
    /** WUPD against a dirty line: apply after the owner's data. */
    bool updApply = false;
    unsigned updWord = 0;
    std::uint8_t updKind = 0;
    std::uint64_t updValue = 0;
    /** RUNC in flight: answer without recording a pointer. */
    bool pendingUncached = false;
    /** Chained-walk bookkeeping. */
    NodeId walkTarget = invalidNode;
    NodeId repcRequester = invalidNode;
    /** Requests parked during a transaction (see MemParams). */
    std::deque<PacketPtr> deferred;
};

} // namespace limitless

#endif // LIMITLESS_MEM_HOME_HOME_LINE_HH
