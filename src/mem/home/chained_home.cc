/**
 * @file
 * Chained-directory home policy (comparison baseline).
 *
 * The home keeps only a head pointer; caches hold forward pointers. The
 * defining property — sequential invalidation latency proportional to the
 * sharing-chain length — is modelled by walking the chain one member at a
 * time: the home INVs the current member, the member's ACKC carries its
 * successor, and the home proceeds. (Real SCI forwards the invalidation
 * cache-to-cache; driving the walk from the home doubles the constant but
 * preserves the linear shape and avoids SCI's unordered-channel races;
 * see DESIGN.md.)
 *
 * Shared lines may not be dropped silently (the chain would break);
 * replacement uses an explicit REPC transaction that unlinks via a full
 * chain invalidation. WUPD/RUNC traffic never reaches a chained home
 * (update mode is unsupported and private-only is a separate scheme), so
 * those opcodes are deliberately undeclared and die in the engine.
 */

#include <cassert>

#include "directory/chained_dir.hh"
#include "mem/home/home_actions.hh"
#include "mem/memory_controller.hh"
#include "proto/states.hh"

namespace limitless
{
namespace home
{

namespace
{

// Guards -------------------------------------------------------------

bool
chainEmpty(const HomeCtx &c)
{
    return c.mc.chainedDir()->head(c.line()) == invalidNode;
}

// Read-Only actions --------------------------------------------------

void
roChainRead(HomeCtx &c)
{
    const Addr line = c.line();
    const NodeId src = c.src();
    c.mc.noteRead();
    // New reader becomes the head and links to the old head.
    const NodeId head = c.mc.chainedDir()->head(line);
    c.mc.chainedDir()->push(line, src);
    c.mc.sendReadData(src, line, head);
}

void
roWriteGrant(HomeCtx &c)
{
    const Addr line = c.line();
    const NodeId src = c.src();
    c.mc.noteWrite();
    c.mc.noteWorkerSet(1);
    c.mc.chainedDir()->push(line, src);
    c.mc.sendWriteData(src, line);
}

void
roWriteWalk(HomeCtx &c)
{
    const Addr line = c.line();
    const NodeId src = c.src();
    const NodeId head = c.mc.chainedDir()->head(line);
    c.mc.noteWrite();
    c.mc.noteWorkerSet(c.mc.chainedDir()->chainLength(line) + 1);
    c.hl.pending = src;
    c.hl.walkTarget = head;
    c.mc.sendInv(head, line);
}

/** REPC against a dissolved chain: nothing to unlink, ack at once. */
void
repcAckRequester(HomeCtx &c)
{
    c.mc.dispatch(makeProtocolPacket(c.mc.nodeId(), c.src(),
                                     Opcode::REPC_ACK, c.line()));
}

void
roRepcWalk(HomeCtx &c)
{
    const Addr line = c.line();
    const NodeId head = c.mc.chainedDir()->head(line);
    c.hl.repcRequester = c.src();
    c.hl.walkTarget = head;
    c.mc.sendInv(head, line);
}

// Read-Write actions -------------------------------------------------

NodeId
chainOwner(const HomeCtx &c)
{
    const NodeId owner = c.mc.chainedDir()->head(c.line());
    assert(owner != invalidNode);
    return owner;
}

void
rwChainRead(HomeCtx &c)
{
    const Addr line = c.line();
    const NodeId src = c.src();
    c.mc.noteRead();
    const NodeId owner = chainOwner(c);
    assert(src != owner);
    c.hl.pending = src;
    c.hl.dataSeen = false;
    c.mc.sendInv(owner, line);
}

void
rwChainWrite(HomeCtx &c)
{
    const Addr line = c.line();
    const NodeId src = c.src();
    c.mc.noteWrite();
    const NodeId owner = chainOwner(c);
    assert(src != owner);
    c.mc.noteWorkerSet(1);
    c.hl.pending = src;
    c.hl.walkTarget = invalidNode; // single-owner write
    c.mc.sendInv(owner, line);
}

void
rwChainReplace(HomeCtx &c)
{
    const Addr line = c.line();
    const NodeId owner = chainOwner(c);
    assert(c.src() == owner);
    (void)owner;
    c.mc.writeLine(line, c.pkt->data);
    c.mc.chainedDir()->clear(line);
    c.mc.replayDeferred(c.hl);
}

/**
 * The line is exclusively owned, so the requester's chained copy was
 * already invalidated (every transition into Read-Write dissolves the
 * chain): grant immediately. Deferring here would park the packet in a
 * stable state with no completion to replay it.
 */
void
rwRepcAck(HomeCtx &c)
{
    chainOwner(c); // assert the owner exists
    repcAckRequester(c);
}

// Transaction actions ------------------------------------------------

void
rtChainUpdate(HomeCtx &c)
{
    const Addr line = c.line();
    c.mc.writeLine(line, c.pkt->data);
    c.mc.chainedDir()->clear(line);
    c.mc.chainedDir()->push(line, c.hl.pending);
    c.mc.sendReadData(c.hl.pending, line, invalidNode);
    c.mc.replayDeferred(c.hl);
}

void
rtChainFinish(HomeCtx &c)
{
    const Addr line = c.line();
    c.mc.chainedDir()->clear(line);
    c.mc.chainedDir()->push(line, c.hl.pending);
    c.mc.sendReadData(c.hl.pending, line, invalidNode);
    c.hl.dataSeen = false;
    c.mc.replayDeferred(c.hl);
}

void
wtChainUpdate(HomeCtx &c)
{
    // Single-owner write: the previous owner returned the data.
    const Addr line = c.line();
    c.mc.writeLine(line, c.pkt->data);
    c.mc.chainedDir()->clear(line);
    c.mc.chainedDir()->push(line, c.hl.pending);
    c.mc.sendWriteData(c.hl.pending, line);
    c.mc.replayDeferred(c.hl);
}

/** One walk step done: INV the successor, or grant at the tail. */
void
wtWalkAck(HomeCtx &c)
{
    const Addr line = c.line();
    HomeLine &hl = c.hl;
    if (hl.walkTarget == invalidNode) {
        // Single-owner write whose REPM crossed our INV: the ACKC closes
        // the transaction (data arrived with the REPM).
        c.mc.chainedDir()->clear(line);
        c.mc.chainedDir()->push(line, hl.pending);
        c.mc.sendWriteData(hl.pending, line);
        hl.state = MemState::readWrite;
        c.mc.replayDeferred(hl);
        return;
    }
    const NodeId next = c.pkt->operands.size() > 1
                            ? static_cast<NodeId>(c.pkt->operands[1])
                            : invalidNode;
    if (next != invalidNode) {
        hl.walkTarget = next;
        c.mc.sendInv(next, line);
        return;
    }
    // Tail reached: the whole chain is invalid; grant the write.
    c.mc.chainedDir()->clear(line);
    c.mc.chainedDir()->push(line, hl.pending);
    c.mc.sendWriteData(hl.pending, line);
    hl.walkTarget = invalidNode;
    hl.state = MemState::readWrite;
    c.mc.replayDeferred(hl);
}

/** Replacement-walk step: INV the successor, or REPC_ACK at the tail. */
void
etWalkAck(HomeCtx &c)
{
    const Addr line = c.line();
    HomeLine &hl = c.hl;
    assert(!c.pkt->operands.empty());
    const NodeId next = c.pkt->operands.size() > 1
                            ? static_cast<NodeId>(c.pkt->operands[1])
                            : invalidNode;
    if (next != invalidNode) {
        hl.walkTarget = next;
        c.mc.sendInv(next, line);
        return;
    }
    c.mc.chainedDir()->clear(line);
    c.mc.dispatch(makeProtocolPacket(c.mc.nodeId(), hl.repcRequester,
                                     Opcode::REPC_ACK, line));
    hl.repcRequester = invalidNode;
    hl.walkTarget = invalidNode;
    hl.state = MemState::readOnly;
    c.mc.replayDeferred(hl);
}

} // namespace

const HomePolicy &
chainedHomePolicy()
{
    static const HomePolicy policy = [] {
        static HomeTable t("chained", ProtocolKind::chained,
                           TableSide::home, homeStateName);
        t.add(stRO, Opcode::RREQ, "ro_chain_read", roChainRead, stRO);
        t.add(stRO, Opcode::WREQ, "ro_write_grant", chainEmpty,
              "chain_empty", roWriteGrant, stRW);
        t.add(stRO, Opcode::WREQ, "ro_chain_walk", roWriteWalk, stWT);
        t.add(stRO, Opcode::REPC, "ro_repc_ack", chainEmpty,
              "chain_empty", repcAckRequester, stRO);
        t.add(stRO, Opcode::REPC, "ro_repc_walk", roRepcWalk, stET);
        t.add(stRO, Opcode::ACKC, "stale_ack", staleAck, stRO);

        t.add(stRW, Opcode::RREQ, "rw_recall_read", rwChainRead, stRT);
        t.add(stRW, Opcode::WREQ, "rw_recall_write", rwChainWrite, stWT);
        t.add(stRW, Opcode::REPM, "rw_owner_replace", rwChainReplace,
              stRO);
        t.add(stRW, Opcode::REPC, "rw_repc_ack", rwRepcAck, stRW);

        addDeferRows(t, stRT, true);
        t.add(stRT, Opcode::UPDATE, "rt_update", rtChainUpdate, stRO);
        t.add(stRT, Opcode::REPM, "rt_crossed_data", rtCrossedData,
              stRT);
        t.add(stRT, Opcode::ACKC, "rt_finish", dataSeenGuard,
              "data_seen", rtChainFinish, stRO);
        t.add(stRT, Opcode::ACKC, "stale_ack", staleAck, stRT);

        addDeferRows(t, stWT, true);
        t.add(stWT, Opcode::UPDATE, "wt_update", wtChainUpdate, stRW);
        t.add(stWT, Opcode::REPM, "wt_crossed_data", wtCrossedData,
              stWT);
        t.add(stWT, Opcode::ACKC, "wt_walk_ack", wtWalkAck,
              dynamicNextState);

        addDeferRows(t, stET, true);
        t.add(stET, Opcode::ACKC, "et_walk_ack", etWalkAck,
              dynamicNextState);
        t.registerSelf();
        return HomePolicy{&t, nullptr};
    }();
    return policy;
}

} // namespace home
} // namespace limitless
