/**
 * @file
 * Shared home-side guards and actions: the scheme-independent parts of
 * the paper's Table 3 memory-side FSM, expressed as guarded actions over
 * HomeCtx. Scheme-specific rows live in the sibling *_home.cc units.
 */

#include "mem/home/home_actions.hh"

#include <algorithm>
#include <cassert>

#include "cache/mem_op.hh"
#include "machine/coherence_policy.hh"
#include "mem/memory_controller.hh"
#include "obs/flight_recorder.hh"

namespace limitless
{
namespace home
{

// --------------------------------------------------------------------
// Guards
// --------------------------------------------------------------------

bool
dirHasRoom(const HomeCtx &c)
{
    return c.mc.directory().canAdd(c.line(), c.src());
}

bool
dataSeenGuard(const HomeCtx &c)
{
    return c.hl.dataSeen;
}

// --------------------------------------------------------------------
// Helpers
// --------------------------------------------------------------------

NodeId
soleOwner(const HomeCtx &c)
{
    std::vector<NodeId> owner_list;
    c.mc.directory().sharers(c.line(), owner_list);
    assert(owner_list.size() == 1 && "Read-Write must have one owner");
    return owner_list[0];
}

void
startWriteTransaction(HomeCtx &c, NodeId requester,
                      const std::vector<NodeId> &to_inv)
{
    const Addr line = c.line();
    if (to_inv.empty()) {
        // Transition 2: no other copies; grant immediately.
        c.hl.state = MemState::readWrite;
        c.mc.sendWriteData(requester, line);
        return;
    }
    // Transition 3: invalidate every other copy first.
    c.hl.state = MemState::writeTransaction;
    c.hl.pending = requester;
    c.hl.ackCtr = static_cast<std::uint32_t>(to_inv.size());
    for (NodeId n : to_inv)
        c.mc.sendInv(n, line);
}

// --------------------------------------------------------------------
// Read-Only actions
// --------------------------------------------------------------------

void
grantRead(HomeCtx &c)
{
    const Addr line = c.line();
    const NodeId src = c.src();
    c.mc.noteRead();
    const DirAdd r = c.mc.directory().tryAdd(line, src);
    if (r == DirAdd::overflow)
        panic("home %u: pointer overflow on a guarded read grant",
              c.mc.nodeId());
    c.mc.sendReadData(src, line);
}

void
roWrite(HomeCtx &c)
{
    const Addr line = c.line();
    const NodeId src = c.src();
    c.mc.noteWrite();
    std::vector<NodeId> sharer_list;
    c.mc.directory().sharers(line, sharer_list);
    std::vector<NodeId> others;
    for (NodeId n : sharer_list)
        if (n != src)
            others.push_back(n);
    c.mc.noteWorkerSet(others.size() + 1);
    c.mc.directory().clear(line);
    const DirAdd r = c.mc.directory().tryAdd(line, src);
    assert(r != DirAdd::overflow);
    (void)r;
    startWriteTransaction(c, src, others);
}

void
writeUpdate(HomeCtx &c)
{
    MemoryController &mc = c.mc;
    Packet &pkt = *c.pkt;
    const Addr line = pkt.addr();
    const NodeId src = pkt.src;
    const unsigned word = static_cast<unsigned>(pkt.operands.at(1));
    const auto kind = static_cast<MemOpKind>(pkt.operands.at(2));
    const std::uint64_t value = pkt.operands.at(3);
    const bool silent =
        pkt.operands.size() > 4 && (pkt.operands[4] & 1);
    assert(word < mc.addressMap().wordsPerLine());

    // Perform the operation at memory (atomic: the home serializes).
    LineWords &mem = mc.lineWords(line);
    const std::uint64_t old = mem[word];
    switch (kind) {
      case MemOpKind::store:
      case MemOpKind::swap:
        mem[word] = value;
        break;
      case MemOpKind::fetchAdd:
        mem[word] = old + value;
        break;
      case MemOpKind::load:
        panic("WUPD carrying a load");
    }
    mc.noteWriteUpdate();

    // Refresh every cached copy in place; the sharer set is untouched
    // (that is the whole point of update mode). Software-extended state
    // is consulted but not freed.
    std::vector<NodeId> sharers;
    mc.directory().sharers(line, sharers);
    mc.softwareTable().sharers(line, sharers);
    std::sort(sharers.begin(), sharers.end());
    sharers.erase(std::unique(sharers.begin(), sharers.end()),
                  sharers.end());

    // This is a software-synthesized coherence type on the LimitLESS
    // machine: charge the handler occupancy.
    if (mc.limitlessDir())
        mc.chargeTrap(mc.protocol().softwareLatency, src, line);

    if (sharers.empty()) {
        if (!silent) {
            auto wack = makeProtocolPacket(mc.nodeId(), src, Opcode::WACK,
                                           line);
            wack->operands.push_back(old);
            mc.dispatch(std::move(wack));
        }
        return;
    }
    c.hl.state = MemState::writeTransaction;
    c.hl.updWrite = true;
    c.hl.updSilent = silent;
    c.hl.updOld = old;
    c.hl.pending = src;
    c.hl.ackCtr = static_cast<std::uint32_t>(sharers.size());
    for (NodeId n : sharers) {
        auto mupd = makeDataPacket(mc.nodeId(), n, Opcode::MUPD, line,
                                   mem.data(),
                                   mc.addressMap().wordsPerLine());
        mc.dispatch(std::move(mupd));
    }
}

void
uncachedRead(HomeCtx &c)
{
    // Uncached read (private-only baseline): data, no pointer.
    c.mc.noteRead();
    c.mc.sendReadData(c.src(), c.line());
}

void
staleAck(HomeCtx &c)
{
    // Legally unreachable in Read-Only (see DESIGN.md ack-discipline
    // note); kept tolerant so the stat can be asserted zero in property
    // tests.
    c.mc.noteStaleAck();
}

void
deferRequest(HomeCtx &c)
{
    c.mc.deferOrBusy(c.pkt, c.hl);
}

// --------------------------------------------------------------------
// Read-Write actions
// --------------------------------------------------------------------

void
rwRead(HomeCtx &c)
{
    const Addr line = c.line();
    const NodeId src = c.src();
    c.mc.noteRead();
    const NodeId owner = soleOwner(c);
    assert(src != owner && "owner re-requesting a line it owns");
    c.mc.directory().clear(line);
    c.mc.directory().tryAdd(line, src);
    c.hl.pending = src;
    c.hl.dataSeen = false;
    c.mc.sendInv(owner, line);
}

void
rwWrite(HomeCtx &c)
{
    const Addr line = c.line();
    const NodeId src = c.src();
    c.mc.noteWrite();
    const NodeId owner = soleOwner(c);
    assert(src != owner);
    c.mc.noteWorkerSet(1);
    c.mc.directory().clear(line);
    c.mc.directory().tryAdd(line, src);
    c.hl.pending = src;
    c.hl.ackCtr = 1;
    c.mc.sendInv(owner, line);
}

void
rwUncachedRecall(HomeCtx &c)
{
    // Uncached read of a dirty line: recall the data first, then answer
    // without recording a pointer.
    const Addr line = c.line();
    const NodeId src = c.src();
    c.mc.noteRead();
    const NodeId owner = soleOwner(c);
    assert(src != owner);
    c.mc.directory().clear(line);
    c.hl.pending = src;
    c.hl.pendingUncached = true;
    c.hl.dataSeen = false;
    c.mc.sendInv(owner, line);
}

void
rwWupdRecall(HomeCtx &c)
{
    // Write-update against a dirty line (private-only remote write, or a
    // mixed-policy race): recall the data, then apply.
    Packet &pkt = *c.pkt;
    const Addr line = pkt.addr();
    if (c.mc.coherencePolicy() && c.mc.coherencePolicy()->isUpdateMode(line))
        panic("home %u: update-mode line %#llx held exclusively "
              "(mark lines before first use)",
              c.mc.nodeId(), (unsigned long long)line);
    c.mc.noteWrite();
    const NodeId owner = soleOwner(c);
    c.mc.directory().clear(line);
    c.hl.pending = pkt.src;
    c.hl.ackCtr = 1;
    c.hl.updWrite = true;
    c.hl.updApply = true;
    c.hl.updWord = static_cast<unsigned>(pkt.operands.at(1));
    c.hl.updKind = static_cast<std::uint8_t>(pkt.operands.at(2));
    c.hl.updValue = pkt.operands.at(3);
    c.mc.sendInv(owner, line);
}

void
rwOwnerReplace(HomeCtx &c)
{
    const Addr line = c.line();
    const NodeId owner = soleOwner(c);
    assert(c.src() == owner && "REPM from a non-owner");
    (void)owner;
    c.mc.writeLine(line, c.pkt->data);
    c.mc.directory().clear(line);
    c.mc.replayDeferred(c.hl);
}

// --------------------------------------------------------------------
// Read-Transaction actions
// --------------------------------------------------------------------

void
rtFinish(HomeCtx &c)
{
    const Addr line = c.line();
    FlightRecorder::instance().latency().onInvEnd(c.mc.now(),
                                                  c.hl.pending, line);
    c.mc.sendReadData(c.hl.pending, line);
    c.hl.dataSeen = false;
    c.hl.pendingUncached = false;
    c.mc.replayDeferred(c.hl);
}

void
rtUpdate(HomeCtx &c)
{
    // Transition 10: previous owner returns the data.
    c.mc.writeLine(c.line(), c.pkt->data);
    rtFinish(c);
}

void
rtCrossedData(HomeCtx &c)
{
    // The owner's replacement crossed our INV; the data arrives here and
    // the owner's ACKC (to the INV) closes the transaction.
    c.mc.writeLine(c.line(), c.pkt->data);
    c.hl.dataSeen = true;
}

// --------------------------------------------------------------------
// Write-Transaction actions
// --------------------------------------------------------------------

void
wtAck(HomeCtx &c)
{
    MemoryController &mc = c.mc;
    HomeLine &hl = c.hl;
    const Addr line = c.line();
    assert(hl.ackCtr > 0 && "acknowledgment counter underflow");
    --hl.ackCtr;
    if (hl.ackCtr != 0)
        return;
    FlightRecorder::instance().latency().onInvEnd(mc.now(), hl.pending,
                                                  line);
    if (hl.updWrite) {
        if (hl.updApply) {
            // Recalled-data case: apply the write now that the owner's
            // data is in memory.
            LineWords &mem = mc.lineWords(line);
            hl.updOld = mem[hl.updWord];
            switch (static_cast<MemOpKind>(hl.updKind)) {
              case MemOpKind::store:
              case MemOpKind::swap:
                mem[hl.updWord] = hl.updValue;
                break;
              case MemOpKind::fetchAdd:
                mem[hl.updWord] = hl.updOld + hl.updValue;
                break;
              case MemOpKind::load:
                panic("WUPD carrying a load");
            }
            mc.noteWriteUpdate();
            hl.updApply = false;
        }
        // Update-mode write: every cached copy is refreshed; the writer
        // gets the old word, the line stays Read-Only.
        if (!hl.updSilent) {
            auto wack = makeProtocolPacket(mc.nodeId(), hl.pending,
                                           Opcode::WACK, line);
            wack->operands.push_back(hl.updOld);
            mc.dispatch(std::move(wack));
        }
        hl.updWrite = false;
        hl.updSilent = false;
        hl.state = MemState::readOnly;
    } else {
        // Transition 8: grant write permission.
        mc.sendWriteData(hl.pending, line);
        hl.state = MemState::readWrite;
    }
    mc.replayDeferred(hl);
}

void
wtUpdate(HomeCtx &c)
{
    c.mc.writeLine(c.line(), c.pkt->data);
    wtAck(c);
}

void
wtCrossedData(HomeCtx &c)
{
    // Crossed replacement: take the data; the ACKC that follows the INV
    // performs the decrement (ack discipline, DESIGN.md §7).
    c.mc.writeLine(c.line(), c.pkt->data);
}

// --------------------------------------------------------------------
// Evict-Transaction actions
// --------------------------------------------------------------------

void
etComplete(HomeCtx &c)
{
    // Victim invalidated: recycle its pointer for the waiting reader.
    const Addr line = c.line();
    c.mc.directory().remove(line, c.hl.evictVictim);
    const DirAdd r = c.mc.directory().tryAdd(line, c.hl.pending);
    assert(r != DirAdd::overflow);
    (void)r;
    FlightRecorder::instance().latency().onInvEnd(c.mc.now(),
                                                  c.hl.pending, line);
    c.mc.sendReadData(c.hl.pending, line);
    c.hl.evictVictim = invalidNode;
    c.mc.replayDeferred(c.hl);
}

// --------------------------------------------------------------------
// Row-block builders
// --------------------------------------------------------------------

void
addDeferRows(HomeTable &t, std::uint8_t state, bool chained)
{
    // Transition 7: requests wait out the in-flight transaction.
    t.add(state, Opcode::RREQ, "defer", deferRequest, state);
    t.add(state, Opcode::WREQ, "defer", deferRequest, state);
    t.add(state, Opcode::REPC, "defer", deferRequest, state);
    if (!chained) {
        t.add(state, Opcode::WUPD, "defer", deferRequest, state);
        t.add(state, Opcode::RUNC, "defer", deferRequest, state);
    }
}

void
addRoCommonRows(HomeTable &t)
{
    t.add(stRO, Opcode::WUPD, "ro_write_update", writeUpdate,
          dynamicNextState);
    t.add(stRO, Opcode::RUNC, "ro_uncached_read", uncachedRead, stRO);
    t.add(stRO, Opcode::ACKC, "stale_ack", staleAck, stRO);
}

void
addRwRows(HomeTable &t, void (*rreq_action)(HomeCtx &),
          void (*wreq_action)(HomeCtx &))
{
    t.add(stRW, Opcode::RREQ, "rw_recall_read", rreq_action, stRT);
    t.add(stRW, Opcode::WREQ, "rw_recall_write", wreq_action, stWT);
    t.add(stRW, Opcode::RUNC, "rw_uncached_recall", rwUncachedRecall,
          stRT);
    t.add(stRW, Opcode::WUPD, "rw_wupd_recall", rwWupdRecall, stWT);
    t.add(stRW, Opcode::REPM, "rw_owner_replace", rwOwnerReplace, stRO);
    t.add(stRW, Opcode::ACKC, "stale_ack", staleAck, stRW);
}

void
addRtRows(HomeTable &t)
{
    addDeferRows(t, stRT, false);
    t.add(stRT, Opcode::UPDATE, "rt_update", rtUpdate, stRO);
    t.add(stRT, Opcode::REPM, "rt_crossed_data", rtCrossedData, stRT);
    t.add(stRT, Opcode::ACKC, "rt_finish", dataSeenGuard, "data_seen",
          rtFinish, stRO);
    t.add(stRT, Opcode::ACKC, "stale_ack", staleAck, stRT);
}

void
addWtRows(HomeTable &t)
{
    addDeferRows(t, stWT, false);
    t.add(stWT, Opcode::UPDATE, "wt_update", wtUpdate, dynamicNextState);
    t.add(stWT, Opcode::ACKC, "wt_ack", wtAck, dynamicNextState);
    t.add(stWT, Opcode::REPM, "wt_crossed_data", wtCrossedData, stWT);
}

void
addEtRows(HomeTable &t)
{
    addDeferRows(t, stET, false);
    t.add(stET, Opcode::ACKC, "et_complete", etComplete, stRO);
}

// --------------------------------------------------------------------
// Policy selection
// --------------------------------------------------------------------

const HomePolicy &
homePolicyFor(ProtocolKind kind)
{
    switch (kind) {
      case ProtocolKind::fullMap: return fullMapHomePolicy();
      case ProtocolKind::limited: return limitedHomePolicy();
      case ProtocolKind::limitless: return limitlessHomePolicy();
      case ProtocolKind::chained: return chainedHomePolicy();
      case ProtocolKind::privateOnly: return privateHomePolicy();
    }
    panic("unknown protocol kind %d", static_cast<int>(kind));
}

} // namespace home
} // namespace limitless
