/**
 * @file
 * Full-map home policy (paper Section 2.2 baseline): one presence bit
 * per cache, so the directory never overflows and every Read-Only
 * request is served in hardware. The table is exactly the paper's
 * Table 3 FSM with no overflow rows; Evict-Transaction is unreachable
 * and therefore undeclared.
 */

#include "mem/home/home_actions.hh"
#include "proto/states.hh"

namespace limitless
{
namespace home
{

const HomePolicy &
fullMapHomePolicy()
{
    static const HomePolicy policy = [] {
        static HomeTable t("full-map", ProtocolKind::fullMap,
                           TableSide::home, homeStateName);
        t.add(stRO, Opcode::RREQ, "ro_grant_read", grantRead, stRO);
        t.add(stRO, Opcode::WREQ, "ro_write", roWrite, dynamicNextState);
        addRoCommonRows(t);
        addRwRows(t, rwRead, rwWrite);
        addRtRows(t);
        addWtRows(t);
        t.registerSelf();
        return HomePolicy{&t, nullptr};
    }();
    return policy;
}

} // namespace home
} // namespace limitless
