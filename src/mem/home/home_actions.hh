/**
 * @file
 * Guards, actions and row-block builders shared by the per-scheme home
 * policy units. Internal to src/mem/home/ — everything here operates on
 * HomeCtx and drives the MemoryController through its public
 * transition-action API only.
 *
 * Naming: guards are predicates over a const context; actions mutate.
 * The add*Rows() builders append the row blocks that are identical
 * across the four pointer-directory schemes (full-map, limited,
 * LimitLESS, private-only) so each scheme file only spells out where it
 * differs: the Read-Only request rows.
 */

#ifndef LIMITLESS_MEM_HOME_HOME_ACTIONS_HH
#define LIMITLESS_MEM_HOME_HOME_ACTIONS_HH

#include <vector>

#include "mem/home/home_policy.hh"

namespace limitless
{
namespace home
{

/** MemState as table state indices. */
constexpr std::uint8_t stRO =
    static_cast<std::uint8_t>(MemState::readOnly);
constexpr std::uint8_t stRW =
    static_cast<std::uint8_t>(MemState::readWrite);
constexpr std::uint8_t stRT =
    static_cast<std::uint8_t>(MemState::readTransaction);
constexpr std::uint8_t stWT =
    static_cast<std::uint8_t>(MemState::writeTransaction);
constexpr std::uint8_t stET =
    static_cast<std::uint8_t>(MemState::evictTransaction);

// Guards ------------------------------------------------------------

/** The hardware directory can take the requester without overflowing. */
bool dirHasRoom(const HomeCtx &c);
/** RT: the owner's crossed REPM already delivered the data. */
bool dataSeenGuard(const HomeCtx &c);

// Shared actions -----------------------------------------------------

/** RO RREQ, guarded by dirHasRoom where overflow is possible: record
 *  the reader and send the data. */
void grantRead(HomeCtx &c);
/** RO WREQ (hardware path): invalidate every other copy, grant write.
 *  Dynamic next — empty sharer set grants immediately (Transition 2). */
void roWrite(HomeCtx &c);
/** RO WUPD: update-mode write (Section 6) — refresh copies in place. */
void writeUpdate(HomeCtx &c);
/** RO RUNC: uncached read — data, no pointer. */
void uncachedRead(HomeCtx &c);
/** Count-and-ignore a stale acknowledgment. */
void staleAck(HomeCtx &c);
/** Park a mid-transaction request (or BUSY it; see MemParams). */
void deferRequest(HomeCtx &c);

void rwRead(HomeCtx &c);
void rwWrite(HomeCtx &c);
void rwUncachedRecall(HomeCtx &c);
void rwWupdRecall(HomeCtx &c);
void rwOwnerReplace(HomeCtx &c);

void rtUpdate(HomeCtx &c);
void rtFinish(HomeCtx &c);
void rtCrossedData(HomeCtx &c);

void wtUpdate(HomeCtx &c);
void wtAck(HomeCtx &c);
void wtCrossedData(HomeCtx &c);

void etComplete(HomeCtx &c);

// Helpers ------------------------------------------------------------

/** Sole owner of an exclusively held line (asserts exactly one). */
NodeId soleOwner(const HomeCtx &c);

/**
 * Common tail of every write path: grant immediately when nobody else
 * holds a copy, otherwise open a Write-Transaction and fan out
 * invalidations. Sets hl.state itself (callers use dynamicNextState).
 */
void startWriteTransaction(HomeCtx &c, NodeId requester,
                           const std::vector<NodeId> &to_inv);

// Row-block builders -------------------------------------------------

/** Transaction states park requests; chained lacks WUPD/RUNC traffic. */
void addDeferRows(HomeTable &t, std::uint8_t state, bool chained);
/** RO rows identical across the pointer schemes: WUPD, RUNC, ACKC. */
void addRoCommonRows(HomeTable &t);
/** The full Read-Write block; RREQ/WREQ actions are parameters so the
 *  LimitLESS table can wrap them with Trap-Always profiling. */
void addRwRows(HomeTable &t, void (*rreq_action)(HomeCtx &),
               void (*wreq_action)(HomeCtx &));
void addRtRows(HomeTable &t);
void addWtRows(HomeTable &t);
/** Evict-Transaction block (limited + LimitLESS only). */
void addEtRows(HomeTable &t);

} // namespace home
} // namespace limitless

#endif // LIMITLESS_MEM_HOME_HOME_ACTIONS_HH
