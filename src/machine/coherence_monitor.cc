#include "machine/coherence_monitor.hh"

#include <cstdarg>
#include <cstdio>
#include <map>
#include <vector>

#include "obs/flight_recorder.hh"
#include "proto/protocol_table.hh"
#include "sim/log.hh"

namespace limitless
{

namespace
{

struct LineCopies
{
    std::vector<NodeId> readers;
    std::vector<NodeId> writers;
};

std::map<Addr, LineCopies>
collectCopies(Machine &m)
{
    std::map<Addr, LineCopies> copies;
    for (unsigned i = 0; i < m.numNodes(); ++i) {
        m.node(i).cache().array().forEachValid(
            [&](const CacheLine &cl) {
                LineCopies &lc = copies[cl.tag];
                if (cl.state == CacheState::readWrite)
                    lc.writers.push_back(i);
                else
                    lc.readers.push_back(i);
            });
    }
    return copies;
}

__attribute__((format(printf, 3, 4))) void
addViolation(std::vector<CoherenceViolation> &out, Addr line,
             const char *fmt, ...)
{
    char buf[512];
    va_list args;
    va_start(args, fmt);
    vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    out.push_back(CoherenceViolation{line, buf});
}

/** Aborting wrapper: die on the first collected violation, with the
 *  flight recorder's postmortem focused on the offending line. */
[[noreturn]] void
panicOn(const CoherenceViolation &v)
{
    FlightRecorder::instance().setPanicFocus(v.line);
    FlightRecorder::instance().setPanicReason("coherence violation");
    panic("%s", v.what.c_str());
}

} // namespace

std::vector<CoherenceViolation>
CoherenceMonitor::collectGlobalViolations() const
{
    std::vector<CoherenceViolation> out;
    const auto copies = collectCopies(_m);
    for (const auto &[line, lc] : copies) {
        if (lc.writers.size() > 1)
            addViolation(out, line,
                         "coherence: line %#llx has %zu Read-Write copies",
                         (unsigned long long)line, lc.writers.size());
        if (!lc.writers.empty() && !lc.readers.empty())
            addViolation(out, line,
                         "coherence: line %#llx has a Read-Write copy at "
                         "node %u alongside %zu Read-Only copies",
                         (unsigned long long)line, lc.writers[0],
                         lc.readers.size());
    }
    return out;
}

void
CoherenceMonitor::checkGlobalInvariants() const
{
    const auto violations = collectGlobalViolations();
    if (!violations.empty())
        panicOn(violations.front());
}

std::vector<CoherenceViolation>
CoherenceMonitor::collectUndeclaredTransitions() const
{
    std::vector<CoherenceViolation> out;
    const ProtocolTableRegistry &reg = ProtocolTableRegistry::instance();
    for (unsigned i = 0; i < _m.numNodes(); ++i) {
        const CacheController &cache = _m.node(i).cache();
        const TableInfo *ct = reg.find(cache.protocol(), TableSide::cache);
        assert(ct && "cache table unregistered despite being dispatched");
        cache.forEachObservedTransition(
            [&](std::uint8_t state, Opcode op) {
                if (!ct->declares(state, op))
                    addViolation(out, 0,
                                 "monitor: node %u cache fired undeclared "
                                 "%s-side transition (%s, %s)",
                                 i, tableSideName(TableSide::cache),
                                 ct->stateName(state), opcodeName(op));
            });
        const MemoryController &mem = _m.node(i).mem();
        const TableInfo *ht =
            reg.find(mem.protocol().kind, TableSide::home);
        assert(ht && "home table unregistered despite being dispatched");
        mem.forEachObservedTransition(
            [&](std::uint8_t state, Opcode op) {
                if (!ht->declares(state, op))
                    addViolation(out, 0,
                                 "monitor: home %u fired undeclared "
                                 "%s-side transition (%s, %s)",
                                 i, tableSideName(TableSide::home),
                                 ht->stateName(state), opcodeName(op));
            });
    }
    return out;
}

void
CoherenceMonitor::checkDeclaredTransitions() const
{
    const auto violations = collectUndeclaredTransitions();
    if (!violations.empty())
        panicOn(violations.front());
}

std::vector<CoherenceViolation>
CoherenceMonitor::collectQuiescentViolations() const
{
    std::vector<CoherenceViolation> out;
    const auto copies = collectCopies(_m);
    const AddressMap &amap = _m.addressMap();

    // (c) every memory FSM stable.
    for (unsigned i = 0; i < _m.numNodes(); ++i) {
        _m.node(i).mem().forEachLine([&](Addr line, MemState st) {
            if (st != MemState::readOnly && st != MemState::readWrite)
                addViolation(out, line,
                             "coherence: home %u line %#llx stuck in %s "
                             "at quiescence",
                             i, (unsigned long long)line,
                             memStateName(st));
        });
    }

    for (const auto &[line, lc] : copies) {
        MemoryController &home = _m.node(amap.homeOf(line)).mem();
        DirectoryScheme &dir = home.directory();
        const SoftwareDirTable &sw = home.softwareTable();
        const bool chained = home.chainedDir() != nullptr;

        // (d) directory tracks every actual copy.
        if (!chained) {
            for (NodeId reader : lc.readers) {
                if (!dir.contains(line, reader) &&
                    !sw.contains(line, reader)) {
                    addViolation(
                        out, line,
                        "coherence: node %u holds %#llx Read-Only but is "
                        "in neither the directory nor the software vector",
                        reader, (unsigned long long)line);
                }
            }
        }

        if (!lc.writers.empty()) {
            const NodeId owner = lc.writers[0];
            if (home.lineState(line) != MemState::readWrite)
                addViolation(out, line,
                             "coherence: node %u holds %#llx Read-Write "
                             "but home state is %s",
                             owner, (unsigned long long)line,
                             memStateName(home.lineState(line)));
            const bool tracked =
                chained ? home.chainedDir()->head(line) == owner
                        : dir.contains(line, owner);
            if (!tracked)
                addViolation(out, line,
                             "coherence: Read-Write owner %u of %#llx is "
                             "not in the directory",
                             owner, (unsigned long long)line);
        } else {
            if (home.lineState(line) == MemState::readWrite)
                addViolation(out, line,
                             "coherence: home says %#llx is Read-Write "
                             "but no cache holds it",
                             (unsigned long long)line);
            // (e) read-only copies agree with memory.
            const LineWords &mem = home.readLine(line);
            for (NodeId reader : lc.readers) {
                const CacheLine *cl =
                    _m.node(reader).cache().array().lookup(line);
                assert(cl);
                for (unsigned w = 0; w < amap.wordsPerLine(); ++w) {
                    if (cl->words[w] != mem[w])
                        addViolation(
                            out, line,
                            "coherence: node %u copy of %#llx word %u is "
                            "%llu, memory has %llu",
                            reader, (unsigned long long)line, w,
                            (unsigned long long)cl->words[w],
                            (unsigned long long)mem[w]);
                }
            }
        }
    }
    return out;
}

void
CoherenceMonitor::checkQuiescent() const
{
    checkGlobalInvariants();
    checkDeclaredTransitions();
    const auto violations = collectQuiescentViolations();
    if (!violations.empty())
        panicOn(violations.front());

    // (f) no remote miss still open in the latency tracker: a nonzero
    // count means a completion path dropped its stamp (the tracker would
    // previously swallow these silently). Guarded on the clock so the
    // check only fires for the machine that owns the recorder state —
    // the model checker drives collectQuiescentViolations() directly and
    // deliberately skips this (its worlds share one recorder).
    FlightRecorder &fr = FlightRecorder::instance();
    if (fr.clock() == &_m.eventQueue() && fr.latency().inFlight() != 0) {
        FlightRecorder::instance().setPanicReason(
            "unfinished remote transactions");
        panic("coherence: %llu remote transaction(s) still in flight at "
              "quiescence — a completion path dropped its latency stamp",
              (unsigned long long)fr.latency().inFlight());
    }
}

} // namespace limitless
