#include "machine/coherence_monitor.hh"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <map>
#include <vector>

#include "obs/flight_recorder.hh"
#include "proto/protocol_table.hh"
#include "sim/log.hh"

namespace limitless
{

namespace
{

struct LineCopies
{
    std::vector<NodeId> readers;
    std::vector<NodeId> writers;
};

std::map<Addr, LineCopies>
collectCopies(Machine &m)
{
    std::map<Addr, LineCopies> copies;
    for (unsigned i = 0; i < m.numNodes(); ++i) {
        m.node(i).cache().array().forEachValid(
            [&](const CacheLine &cl) {
                LineCopies &lc = copies[cl.tag];
                if (cl.state == CacheState::readWrite)
                    lc.writers.push_back(i);
                else
                    lc.readers.push_back(i);
            });
    }
    return copies;
}

__attribute__((format(printf, 3, 4))) void
addViolation(std::vector<CoherenceViolation> &out, Addr line,
             const char *fmt, ...)
{
    char buf[512];
    va_list args;
    va_start(args, fmt);
    vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    out.push_back(CoherenceViolation{line, buf});
}

/** Aborting wrapper: die on the first collected violation, with the
 *  flight recorder's postmortem focused on the offending line. */
[[noreturn]] void
panicOn(const CoherenceViolation &v)
{
    FlightRecorder::instance().setPanicFocus(v.line);
    FlightRecorder::instance().setPanicReason("coherence violation");
    panic("%s", v.what.c_str());
}

} // namespace

std::vector<CoherenceViolation>
CoherenceMonitor::collectGlobalViolations() const
{
    std::vector<CoherenceViolation> out;
    const auto copies = collectCopies(_m);
    for (const auto &[line, lc] : copies) {
        if (lc.writers.size() > 1)
            addViolation(out, line,
                         "coherence: line %#llx has %zu Read-Write copies",
                         (unsigned long long)line, lc.writers.size());
        if (!lc.writers.empty() && !lc.readers.empty())
            addViolation(out, line,
                         "coherence: line %#llx has a Read-Write copy at "
                         "node %u alongside %zu Read-Only copies",
                         (unsigned long long)line, lc.writers[0],
                         lc.readers.size());
    }
    return out;
}

void
CoherenceMonitor::checkGlobalInvariants() const
{
    const auto violations = collectGlobalViolations();
    if (!violations.empty())
        panicOn(violations.front());
}

std::vector<CoherenceViolation>
CoherenceMonitor::collectUndeclaredTransitions() const
{
    std::vector<CoherenceViolation> out;
    const ProtocolTableRegistry &reg = ProtocolTableRegistry::instance();
    for (unsigned i = 0; i < _m.numNodes(); ++i) {
        const CacheController &cache = _m.node(i).cache();
        const TableInfo *ct = reg.find(cache.protocol(), TableSide::cache);
        assert(ct && "cache table unregistered despite being dispatched");
        cache.forEachObservedTransition(
            [&](std::uint8_t state, Opcode op) {
                if (!ct->declares(state, op))
                    addViolation(out, 0,
                                 "monitor: node %u cache fired undeclared "
                                 "%s-side transition (%s, %s)",
                                 i, tableSideName(TableSide::cache),
                                 ct->stateName(state), opcodeName(op));
            });
        const MemoryController &mem = _m.node(i).mem();
        const TableInfo *ht =
            reg.find(mem.protocol().kind, TableSide::home);
        assert(ht && "home table unregistered despite being dispatched");
        mem.forEachObservedTransition(
            [&](std::uint8_t state, Opcode op) {
                if (!ht->declares(state, op))
                    addViolation(out, 0,
                                 "monitor: home %u fired undeclared "
                                 "%s-side transition (%s, %s)",
                                 i, tableSideName(TableSide::home),
                                 ht->stateName(state), opcodeName(op));
            });
        const ChipHomeController *chip = _m.node(i).chipHome();
        if (!chip)
            continue;
        const TableInfo *cht =
            reg.find(chip->protocol().kind, TableSide::chip);
        assert(cht && "chip table unregistered despite being dispatched");
        chip->forEachObservedTransition(
            [&](std::uint8_t state, Opcode op) {
                if (!cht->declares(state, op))
                    addViolation(out, 0,
                                 "monitor: chip home %u fired undeclared "
                                 "%s-side transition (%s, %s)",
                                 i, tableSideName(TableSide::chip),
                                 cht->stateName(state), opcodeName(op));
            });
    }
    return out;
}

void
CoherenceMonitor::checkDeclaredTransitions() const
{
    const auto violations = collectUndeclaredTransitions();
    if (!violations.empty())
        panicOn(violations.front());
}

std::vector<CoherenceViolation>
CoherenceMonitor::collectQuiescentViolations() const
{
    std::vector<CoherenceViolation> out;
    const auto copies = collectCopies(_m);
    const AddressMap &amap = _m.addressMap();
    const bool hier = amap.hier();

    // In two-level mode the global directory tracks one chip-home node
    // per remote sharing chip; the node the global level must account
    // for is that chip home, not the cache itself. Home-chip caches are
    // tracked individually (they request from the global home directly).
    auto globalTrackee = [&](Addr line, NodeId cache) {
        if (hier &&
            amap.clusterOf(cache) != amap.clusterOf(amap.homeOf(line)))
            return amap.chipHomeOf(line, amap.clusterOf(cache));
        return cache;
    };
    // The chip home mediating @p cache's accesses to @p line, or null
    // when the access is direct (flat mode, or the cache sits on the
    // home's own chip). Note the chip home may be the cache's own node:
    // its cache still requests through (and is tracked by) its co-located
    // chip home, so "trackee == cache" does not imply a direct access.
    auto chipHomeFor =
        [&](Addr line, NodeId cache) -> const ChipHomeController * {
        if (!hier ||
            amap.clusterOf(cache) == amap.clusterOf(amap.homeOf(line)))
            return nullptr;
        return _m.node(amap.chipHomeOf(line, amap.clusterOf(cache)))
            .chipHome();
    };

    // (c) every memory FSM stable.
    for (unsigned i = 0; i < _m.numNodes(); ++i) {
        _m.node(i).mem().forEachLine([&](Addr line, MemState st) {
            if (st != MemState::readOnly && st != MemState::readWrite)
                addViolation(out, line,
                             "coherence: home %u line %#llx stuck in %s "
                             "at quiescence",
                             i, (unsigned long long)line,
                             memStateName(st));
        });
    }

    // (c') every chip-home FSM stable, and chip-level state consistent
    // with the global level: a clean chip copy byte-agrees with memory
    // (the sticky hCopy with an empty local directory is legal), while a
    // dirty chip copy requires the global home to see this chip as the
    // exclusive owner.
    for (unsigned i = 0; i < _m.numNodes(); ++i) {
        const ChipHomeController *chip = _m.node(i).chipHome();
        if (!chip)
            continue;
        chip->forEachLine([&](Addr line, ChipState st) {
            if (st != ChipState::hInvalid && st != ChipState::hCopy &&
                st != ChipState::hOwned) {
                addViolation(out, line,
                             "coherence: chip home %u line %#llx stuck "
                             "in %s at quiescence",
                             i, (unsigned long long)line,
                             chipStateName(st));
                return;
            }
            if (st == ChipState::hInvalid)
                return;
            MemoryController &home = _m.node(amap.homeOf(line)).mem();
            if (chip->lineDirty(line)) {
                if (home.lineState(line) != MemState::readWrite)
                    addViolation(out, line,
                                 "coherence: chip home %u holds %#llx "
                                 "dirty but global home state is %s",
                                 i, (unsigned long long)line,
                                 memStateName(home.lineState(line)));
                const bool tracked =
                    home.chainedDir()
                        ? home.chainedDir()->head(line) == i
                        : home.directory().contains(line, i);
                if (!tracked)
                    addViolation(out, line,
                                 "coherence: dirty chip home %u of %#llx "
                                 "is not the global directory's owner",
                                 i, (unsigned long long)line);
            } else if (st == ChipState::hCopy) {
                const LineWords &mem = home.readLine(line);
                const LineWords *cd = chip->lineData(line);
                assert(cd);
                for (unsigned w = 0; w < amap.wordsPerLine(); ++w) {
                    if ((*cd)[w] != mem[w])
                        addViolation(
                            out, line,
                            "coherence: chip home %u clean copy of %#llx "
                            "word %u is %llu, memory has %llu",
                            i, (unsigned long long)line, w,
                            (unsigned long long)(*cd)[w],
                            (unsigned long long)mem[w]);
                }
            }
        });
    }

    for (const auto &[line, lc] : copies) {
        MemoryController &home = _m.node(amap.homeOf(line)).mem();
        DirectoryScheme &dir = home.directory();
        const SoftwareDirTable &sw = home.softwareTable();
        const bool chained = home.chainedDir() != nullptr;

        // (d) directory tracks every actual copy — through the chip
        // level in two-level mode: the global directory tracks the
        // reader's chip home, which in turn tracks the reader.
        for (NodeId reader : lc.readers) {
            const NodeId trackee = globalTrackee(line, reader);
            if (!chained && !dir.contains(line, trackee) &&
                !sw.contains(line, trackee)) {
                addViolation(
                    out, line,
                    "coherence: node %u holds %#llx Read-Only but %s is "
                    "in neither the directory nor the software vector",
                    reader, (unsigned long long)line,
                    trackee == reader ? "it" : "its chip home");
            }
            const ChipHomeController *chip = chipHomeFor(line, reader);
            if (!chip)
                continue;
            std::vector<NodeId> local;
            chip->chipSharers(line, local);
            if (std::find(local.begin(), local.end(), reader) ==
                local.end())
                addViolation(out, line,
                             "coherence: node %u holds %#llx Read-Only "
                             "but chip home %u does not track it",
                             reader, (unsigned long long)line,
                             chip->nodeId());
        }

        if (!lc.writers.empty()) {
            const NodeId owner = lc.writers[0];
            const NodeId trackee = globalTrackee(line, owner);
            if (home.lineState(line) != MemState::readWrite)
                addViolation(out, line,
                             "coherence: node %u holds %#llx Read-Write "
                             "but home state is %s",
                             owner, (unsigned long long)line,
                             memStateName(home.lineState(line)));
            const bool tracked =
                chained ? home.chainedDir()->head(line) == trackee
                        : dir.contains(line, trackee);
            if (!tracked)
                addViolation(out, line,
                             "coherence: Read-Write owner %u of %#llx is "
                             "not in the directory",
                             owner, (unsigned long long)line);
            if (const ChipHomeController *chip =
                    chipHomeFor(line, owner)) {
                std::vector<NodeId> local;
                chip->chipSharers(line, local);
                if (std::find(local.begin(), local.end(), owner) ==
                    local.end())
                    addViolation(
                        out, line,
                        "coherence: Read-Write owner %u of %#llx is not "
                        "tracked by its chip home %u",
                        owner, (unsigned long long)line, chip->nodeId());
            }
        } else {
            // A global Read-Write state with no cache writer is legal
            // in two-level mode when some chip home holds the line
            // dirty (the local owner replaced its copy into the chip
            // buffer); the chip-level sweep above validates that case.
            bool dirtyChip = false;
            if (hier && home.lineState(line) == MemState::readWrite) {
                for (unsigned c = 0; c < amap.numClusters(); ++c) {
                    if (c == amap.clusterOf(amap.homeOf(line)))
                        continue;
                    const ChipHomeController *chip =
                        _m.node(amap.chipHomeOf(line, c)).chipHome();
                    if (chip && chip->lineDirty(line) &&
                        chip->lineState(line) != ChipState::hInvalid)
                        dirtyChip = true;
                }
            }
            if (home.lineState(line) == MemState::readWrite && !dirtyChip)
                addViolation(out, line,
                             "coherence: home says %#llx is Read-Write "
                             "but no cache holds it",
                             (unsigned long long)line);
            // (e) read-only copies agree with the authoritative data:
            // global memory, or the reader's chip copy when that chip
            // holds the line dirty (memory is stale until writeback).
            const LineWords &mem = home.readLine(line);
            for (NodeId reader : lc.readers) {
                const CacheLine *cl =
                    _m.node(reader).cache().array().lookup(line);
                assert(cl);
                const LineWords *ref = &mem;
                const char *refName = "memory";
                const ChipHomeController *chip = chipHomeFor(line, reader);
                if (chip && chip->lineDirty(line)) {
                    ref = chip->lineData(line);
                    refName = "chip home";
                    assert(ref);
                }
                for (unsigned w = 0; w < amap.wordsPerLine(); ++w) {
                    if (cl->words[w] != (*ref)[w])
                        addViolation(
                            out, line,
                            "coherence: node %u copy of %#llx word %u is "
                            "%llu, %s has %llu",
                            reader, (unsigned long long)line, w,
                            (unsigned long long)cl->words[w], refName,
                            (unsigned long long)(*ref)[w]);
                }
            }
        }
    }
    return out;
}

void
CoherenceMonitor::checkQuiescent() const
{
    checkGlobalInvariants();
    checkDeclaredTransitions();
    const auto violations = collectQuiescentViolations();
    if (!violations.empty())
        panicOn(violations.front());

    // (f) no remote miss still open in the latency tracker: a nonzero
    // count means a completion path dropped its stamp (the tracker would
    // previously swallow these silently). Guarded on the clock so the
    // check only fires for the machine that owns the recorder state —
    // the model checker drives collectQuiescentViolations() directly and
    // deliberately skips this (its worlds share one recorder).
    FlightRecorder &fr = FlightRecorder::instance();
    if (fr.clock() == &_m.eventQueue() && fr.latency().inFlight() != 0) {
        FlightRecorder::instance().setPanicReason(
            "unfinished remote transactions");
        panic("coherence: %llu remote transaction(s) still in flight at "
              "quiescence — a completion path dropped its latency stamp",
              (unsigned long long)fr.latency().inFlight());
    }
}

} // namespace limitless
