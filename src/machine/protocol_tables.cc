/**
 * @file
 * Force-builds every scheme's transition tables.
 *
 * The tables are lazily constructed function-local statics, so a process
 * that only runs one protocol registers one pair. Introspection users
 * (--dump-protocol-table, the exhaustiveness tests) call this first to
 * make the registry complete; the machine layer is the only one that
 * links both the home and cache sides.
 */

#include "cache/cache_controller.hh"
#include "mem/home/home_policy.hh"
#include "proto/protocol_table.hh"

namespace limitless
{

void
registerAllProtocolTables()
{
    static const ProtocolKind kinds[] = {
        ProtocolKind::fullMap,   ProtocolKind::limited,
        ProtocolKind::limitless, ProtocolKind::chained,
        ProtocolKind::privateOnly,
    };
    for (ProtocolKind kind : kinds) {
        (void)home::homePolicyFor(kind);
        (void)CacheController::tableFor(kind);
    }
}

} // namespace limitless
