/**
 * @file
 * Global coherence invariant checker used by tests and the model
 * checker (src/check/).
 *
 * Two check levels:
 *  - checkGlobalInvariants() holds at *every* instant of a run:
 *      (a) at most one Read-Write copy of any line exists,
 *      (b) a Read-Write copy excludes Read-Only copies of the same line;
 *  - checkQuiescent() additionally holds when the machine is idle:
 *      (c) every memory FSM is in a stable state,
 *      (d) the directory's sharer set is a superset of the caches that
 *          actually hold copies (silent clean drops leave stale
 *          pointers, never missing ones; LimitLESS counts the software
 *          bit vectors too),
 *      (e) Read-Only copies agree with memory word-for-word, and a
 *          Read-Write line's owner is recorded in the directory.
 *
 * Each check exists in two forms: a collect*() variant that returns the
 * violations as text (the model checker turns these into
 * counterexamples instead of dying), and a check*() variant that panics
 * on the first violation with the flight recorder focused on the
 * offending line (the test-suite entry point).
 */

#ifndef LIMITLESS_MACHINE_COHERENCE_MONITOR_HH
#define LIMITLESS_MACHINE_COHERENCE_MONITOR_HH

#include <string>
#include <vector>

#include "machine/machine.hh"

namespace limitless
{

/** One invariant violation: the line it concerns plus a description. */
struct CoherenceViolation
{
    Addr line = 0;
    std::string what;
};

/** Invariant checker over a whole Machine. */
class CoherenceMonitor
{
  public:
    explicit CoherenceMonitor(Machine &m) : _m(m) {}

    /** Invariants that hold at every instant. Aborts on violation. */
    void checkGlobalInvariants() const;

    /** Full structural check; call only when the machine is idle. */
    void checkQuiescent() const;

    /**
     * Cross-check every (state, opcode) pair the controllers actually
     * fired against the transitions their schemes declare. Observed
     * pairs come from the table dispatch itself, so this catches a
     * registry/table mismatch (e.g. a table mutated after
     * registration), not a dispatch bug — dispatch of an undeclared
     * pair already panics.
     */
    void checkDeclaredTransitions() const;

    /** @name Non-aborting variants (model-checker support).
     *  Empty result = invariant holds. */
    /// @{
    std::vector<CoherenceViolation> collectGlobalViolations() const;
    /** The structural quiescent checks (c)-(e) only; callers wanting
     *  the full checkQuiescent() set also collect the global ones. */
    std::vector<CoherenceViolation> collectQuiescentViolations() const;
    std::vector<CoherenceViolation> collectUndeclaredTransitions() const;
    /// @}

  private:
    Machine &_m;
};

} // namespace limitless

#endif // LIMITLESS_MACHINE_COHERENCE_MONITOR_HH
