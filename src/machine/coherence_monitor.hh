/**
 * @file
 * Global coherence invariant checker used by tests.
 *
 * Two check levels:
 *  - checkGlobalInvariants() holds at *every* instant of a run:
 *      (a) at most one Read-Write copy of any line exists,
 *      (b) a Read-Write copy excludes Read-Only copies of the same line;
 *  - checkQuiescent() additionally holds when the machine is idle:
 *      (c) every memory FSM is in a stable state,
 *      (d) the directory's sharer set is a superset of the caches that
 *          actually hold copies (silent clean drops leave stale
 *          pointers, never missing ones; LimitLESS counts the software
 *          bit vectors too),
 *      (e) Read-Only copies agree with memory word-for-word, and a
 *          Read-Write line's owner is recorded in the directory.
 */

#ifndef LIMITLESS_MACHINE_COHERENCE_MONITOR_HH
#define LIMITLESS_MACHINE_COHERENCE_MONITOR_HH

#include "machine/machine.hh"

namespace limitless
{

/** Invariant checker over a whole Machine. */
class CoherenceMonitor
{
  public:
    explicit CoherenceMonitor(Machine &m) : _m(m) {}

    /** Invariants that hold at every instant. Aborts on violation. */
    void checkGlobalInvariants() const;

    /** Full structural check; call only when the machine is idle. */
    void checkQuiescent() const;

    /**
     * Cross-check every (state, opcode) pair the controllers actually
     * fired against the transitions their schemes declare. Observed
     * pairs come from the table dispatch itself, so this catches a
     * registry/table mismatch (e.g. a table mutated after
     * registration), not a dispatch bug — dispatch of an undeclared
     * pair already panics.
     */
    void checkDeclaredTransitions() const;

  private:
    Machine &_m;
};

} // namespace limitless

#endif // LIMITLESS_MACHINE_COHERENCE_MONITOR_HH
