/**
 * @file
 * Per-line coherence-type designation (paper Section 6): "The directory
 * trap modes can also be used to construct objects that update (rather
 * than invalidate) cached copies after they are modified."
 *
 * A CoherencePolicy records which lines the compiler / runtime has
 * designated update-mode. Caches consult it at issue time (modelling a
 * static, compiler-assigned coherence type, cf. Bennett/Carter/
 * Zwaenepoel's adaptive types cited by the paper) and route writes to
 * those lines through the write-update path (WUPD/MUPD/WACK) instead of
 * the ownership path (WREQ/INV/WDATA).
 *
 * Mark lines before any thread touches them; mixing exclusive ownership
 * with update-mode on the same line is a policy violation and panics.
 */

#ifndef LIMITLESS_MACHINE_COHERENCE_POLICY_HH
#define LIMITLESS_MACHINE_COHERENCE_POLICY_HH

#include <unordered_set>

#include "sim/types.hh"

namespace limitless
{

/** Machine-wide static coherence-type table. */
class CoherencePolicy
{
  public:
    /** Designate a line update-mode (call before the run starts). */
    void markUpdateMode(Addr line) { _update.insert(line); }

    bool
    isUpdateMode(Addr line) const
    {
        return !_update.empty() && _update.count(line) != 0;
    }

    std::size_t updateModeLines() const { return _update.size(); }

    /**
     * Designate a line migratory (paper Section 6: "the LimitLESS trap
     * handler can cause FIFO directory eviction for data structures that
     * are known to migrate from processor to processor"). On pointer
     * overflow the handler evicts the oldest pointer instead of
     * allocating a full-map vector that would be stale moments later.
     */
    void markMigratory(Addr line) { _migratory.insert(line); }

    bool
    isMigratory(Addr line) const
    {
        return !_migratory.empty() && _migratory.count(line) != 0;
    }

  private:
    std::unordered_set<Addr> _update;
    std::unordered_set<Addr> _migratory;
};

} // namespace limitless

#endif // LIMITLESS_MACHINE_COHERENCE_POLICY_HH
