#include "machine/node.hh"

#include "obs/flight_recorder.hh"
#include "sim/log.hh"

namespace limitless
{

Node::Node(EventQueue &eq, NodeId id, const AddressMap &amap,
           const MachineConfig &cfg, Network &net,
           const CoherencePolicy &policy)
    : _eq(eq), _id(id), _amap(amap),
      _localHopLatency(cfg.localHopLatency), _net(net)
{
    _cache = std::make_unique<CacheController>(
        eq, id, amap, cfg.cache, cfg.protocol.kind, cfg.seed);
    _cache->setPolicy(&policy);
    _mem = std::make_unique<MemoryController>(eq, id, amap, cfg.protocol,
                                              cfg.mem);
    _mem->setPolicy(&policy);
    _proc = std::make_unique<Processor>(eq, id, *_cache, cfg.proc,
                                        cfg.seed);
    _ipi = std::make_unique<IpiInterface>(eq, id, cfg.ipiInputCapacity);

    if (cfg.hier && amap.clusterSize() > 1 &&
        cfg.protocol.kind != ProtocolKind::privateOnly) {
        _chip = std::make_unique<ChipHomeController>(eq, id, amap,
                                                     cfg.protocol,
                                                     cfg.mem);
        _chip->setSend(
            [this](PacketPtr pkt) { sendFrom(std::move(pkt)); });
        _chip->setTrapStall([this](Tick t) { _proc->stallFor(t); });
    }

    _cache->setSend([this](PacketPtr pkt) { sendFrom(std::move(pkt)); });
    _mem->setSend([this](PacketPtr pkt) { sendFrom(std::move(pkt)); });
    _ipi->setSendPath([this](PacketPtr pkt) { sendFrom(std::move(pkt)); });

    _mem->setTrapStall([this](Tick t) { _proc->stallFor(t); });
    _mem->setDivert([this](PacketPtr pkt) {
        _ipi->pushInput(std::move(pkt));
    });

    _dispatcher = std::make_unique<TrapDispatcher>(eq, *_ipi, *_proc,
                                                    cfg.kernel);
    if (cfg.protocol.kind == ProtocolKind::limitless &&
        cfg.protocol.limitlessMode == LimitlessMode::fullEmulation) {
        _handler = std::make_unique<LimitlessHandler>(eq, *_mem, *_proc,
                                                      cfg.kernel);
        _dispatcher->setProtocolHandler(_handler.get());
    }
    _ipi->setInterrupt([this]() { _dispatcher->onInterrupt(); });

    net.setReceiver(id, [this](PacketPtr pkt) {
        deliver(std::move(pkt));
    });
}

void
Node::sendFrom(PacketPtr pkt)
{
    assert(pkt);
    // Tagged packets open a network-leg span here and close it at
    // deliver(); untagged traffic pays one predicted branch.
    if (pkt->txnId)
        FlightRecorder::instance().txn().onNetSend(*pkt, _eq.now());
    if (pkt->dest != _id) {
        _net.send(std::move(pkt));
        return;
    }
    // Local loopback: cache <-> local memory controller without touching
    // the interconnect (local misses do not context-switch, paper §2).
    Packet *raw = pkt.release();
    _eq.schedule(_eq.now() + _localHopLatency, [this, raw]() {
        deliver(PacketPtr(raw));
    }, EventPriority::deliver);
}

void
Node::deliver(PacketPtr pkt)
{
    assert(pkt && pkt->dest == _id);
    if (pkt->txnId)
        FlightRecorder::instance().txn().onNetDeliver(*pkt, _eq.now());
    if (pkt->isInterrupt()) {
        _ipi->pushInput(std::move(pkt));
        return;
    }
    // Two-level mode: this node may be the chip home for remote lines
    // whose within-chip interleave digit matches it. A line homed on
    // this node's own chip always belongs to the global home / cache
    // (requestTargetFor never picks a same-chip chip home).
    const bool chipHomed =
        _chip && _amap.clusterOf(_amap.homeOf(pkt->addr())) !=
                     _amap.clusterOf(_id);
    switch (pkt->opcode) {
      // Cache-to-memory class (paper Table 3): to the home controller
      // (or, two-level mode, this chip's home for the line). WUPD/RUNC
      // always target the global home directly.
      case Opcode::RREQ:
      case Opcode::WREQ:
      case Opcode::REPM:
      case Opcode::UPDATE:
      case Opcode::ACKC:
      case Opcode::REPC:
        if (chipHomed) {
            _chip->enqueue(std::move(pkt));
            return;
        }
        [[fallthrough]];
      case Opcode::WUPD:
      case Opcode::RUNC:
        _mem->enqueue(std::move(pkt));
        return;
      // Memory-to-cache class: to the cache controller — unless the
      // chip home is mid-transaction on the line (parent replies) or
      // the packet is the parent's INV of the chip copy.
      case Opcode::RDATA:
      case Opcode::WDATA:
      case Opcode::INV:
      case Opcode::BUSY:
      case Opcode::REPC_ACK:
      case Opcode::MUPD:
      case Opcode::WACK:
        if (chipHomed && pkt->src != _id &&
            _amap.chipHomeOf(pkt->addr(), _amap.clusterOf(_id)) ==
                _id &&
            _chip->wantsResponse(pkt->addr(), pkt->opcode)) {
            _chip->enqueue(std::move(pkt));
            return;
        }
        _cache->handlePacket(std::move(pkt));
        return;
      default:
        panic("node %u: cannot route opcode %s", _id,
              opcodeName(pkt->opcode));
    }
}

const StatSet *
Node::statSet(const std::string &component) const
{
    if (component == "proc")
        return &const_cast<Processor &>(*_proc).stats();
    if (component == "cache")
        return &const_cast<CacheController &>(*_cache).stats();
    if (component == "mem")
        return &const_cast<MemoryController &>(*_mem).stats();
    if (component == "chip" && _chip)
        return &const_cast<ChipHomeController &>(*_chip).stats();
    if (component == "ipi")
        return &_ipi->stats();
    if (component == "handler" && _handler)
        return &_handler->stats();
    if (component == "trap")
        return &_dispatcher->stats();
    return nullptr;
}

} // namespace limitless
