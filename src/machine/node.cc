#include "machine/node.hh"

#include "obs/flight_recorder.hh"
#include "sim/log.hh"

namespace limitless
{

Node::Node(EventQueue &eq, NodeId id, const AddressMap &amap,
           const MachineConfig &cfg, Network &net,
           const CoherencePolicy &policy)
    : _eq(eq), _id(id), _amap(amap),
      _localHopLatency(cfg.localHopLatency), _net(net)
{
    _cache = std::make_unique<CacheController>(
        eq, id, amap, cfg.cache, cfg.protocol.kind, cfg.seed);
    _cache->setPolicy(&policy);
    _mem = std::make_unique<MemoryController>(eq, id, amap, cfg.protocol,
                                              cfg.mem);
    _mem->setPolicy(&policy);
    _proc = std::make_unique<Processor>(eq, id, *_cache, cfg.proc,
                                        cfg.seed);
    _ipi = std::make_unique<IpiInterface>(eq, id, cfg.ipiInputCapacity);

    _cache->setSend([this](PacketPtr pkt) { sendFrom(std::move(pkt)); });
    _mem->setSend([this](PacketPtr pkt) { sendFrom(std::move(pkt)); });
    _ipi->setSendPath([this](PacketPtr pkt) { sendFrom(std::move(pkt)); });

    _mem->setTrapStall([this](Tick t) { _proc->stallFor(t); });
    _mem->setDivert([this](PacketPtr pkt) {
        _ipi->pushInput(std::move(pkt));
    });

    _dispatcher = std::make_unique<TrapDispatcher>(eq, *_ipi, *_proc,
                                                    cfg.kernel);
    if (cfg.protocol.kind == ProtocolKind::limitless &&
        cfg.protocol.limitlessMode == LimitlessMode::fullEmulation) {
        _handler = std::make_unique<LimitlessHandler>(eq, *_mem, *_proc,
                                                      cfg.kernel);
        _dispatcher->setProtocolHandler(_handler.get());
    }
    _ipi->setInterrupt([this]() { _dispatcher->onInterrupt(); });

    net.setReceiver(id, [this](PacketPtr pkt) {
        deliver(std::move(pkt));
    });
}

void
Node::sendFrom(PacketPtr pkt)
{
    assert(pkt);
    // Tagged packets open a network-leg span here and close it at
    // deliver(); untagged traffic pays one predicted branch.
    if (pkt->txnId)
        FlightRecorder::instance().txn().onNetSend(*pkt, _eq.now());
    if (pkt->dest != _id) {
        _net.send(std::move(pkt));
        return;
    }
    // Local loopback: cache <-> local memory controller without touching
    // the interconnect (local misses do not context-switch, paper §2).
    Packet *raw = pkt.release();
    _eq.schedule(_eq.now() + _localHopLatency, [this, raw]() {
        deliver(PacketPtr(raw));
    }, EventPriority::deliver);
}

void
Node::deliver(PacketPtr pkt)
{
    assert(pkt && pkt->dest == _id);
    if (pkt->txnId)
        FlightRecorder::instance().txn().onNetDeliver(*pkt, _eq.now());
    if (pkt->isInterrupt()) {
        _ipi->pushInput(std::move(pkt));
        return;
    }
    switch (pkt->opcode) {
      // Cache-to-memory class (paper Table 3): to the home controller.
      case Opcode::RREQ:
      case Opcode::WREQ:
      case Opcode::REPM:
      case Opcode::UPDATE:
      case Opcode::ACKC:
      case Opcode::REPC:
      case Opcode::WUPD:
      case Opcode::RUNC:
        _mem->enqueue(std::move(pkt));
        return;
      // Memory-to-cache class: to the cache controller.
      case Opcode::RDATA:
      case Opcode::WDATA:
      case Opcode::INV:
      case Opcode::BUSY:
      case Opcode::REPC_ACK:
      case Opcode::MUPD:
      case Opcode::WACK:
        _cache->handlePacket(std::move(pkt));
        return;
      default:
        panic("node %u: cannot route opcode %s", _id,
              opcodeName(pkt->opcode));
    }
}

const StatSet *
Node::statSet(const std::string &component) const
{
    if (component == "proc")
        return &const_cast<Processor &>(*_proc).stats();
    if (component == "cache")
        return &const_cast<CacheController &>(*_cache).stats();
    if (component == "mem")
        return &const_cast<MemoryController &>(*_mem).stats();
    if (component == "ipi")
        return &_ipi->stats();
    if (component == "handler" && _handler)
        return &_handler->stats();
    if (component == "trap")
        return &_dispatcher->stats();
    return nullptr;
}

} // namespace limitless
