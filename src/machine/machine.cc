#include "machine/machine.hh"

#include <cassert>
#include <iostream>

#include "sim/log.hh"

namespace limitless
{

Machine::Machine(const MachineConfig &cfg)
    : _cfg(cfg),
      _amap(cfg.numNodes, cfg.lineBytes, cfg.bytesPerNode, cfg.mapping)
{
    const MeshTopology topo(cfg.resolvedMeshWidth(),
                            cfg.resolvedMeshHeight());
    assert(topo.numNodes() == cfg.numNodes &&
           "mesh dimensions must cover every node");

    if (cfg.network == NetworkKind::mesh)
        _net = std::make_unique<MeshNetwork>(_eq, topo, cfg.meshParams);
    else
        _net = std::make_unique<IdealNetwork>(_eq, topo, cfg.idealParams);

    _nodes.reserve(cfg.numNodes);
    for (NodeId i = 0; i < cfg.numNodes; ++i)
        _nodes.push_back(std::make_unique<Node>(_eq, i, _amap, _cfg,
                                                *_net, _policy));
}

Machine::~Machine() = default;

void
Machine::spawnOn(NodeId node_id, Processor::ThreadFn fn)
{
    _nodes.at(node_id)->processor().spawn(std::move(fn));
    ++_spawned;
}

RunResult
Machine::run(Tick max_cycles)
{
    RunResult result;
    if (_spawned == 0)
        fatal("Machine::run with no threads spawned");

    unsigned finished = 0;
    Tick done_tick = 0;
    for (auto &node : _nodes) {
        node->processor().setOnThreadDone([&]() {
            ++finished;
            if (finished == _spawned)
                done_tick = _eq.now();
        });
    }
    for (auto &node : _nodes)
        node->processor().start();

    auto all_done = [&]() { return finished == _spawned; };

    auto progress = [this]() {
        std::uint64_t ops = 0;
        for (const auto &node : _nodes) {
            const auto *stat = node->statSet("proc")->find("ops");
            ops += static_cast<const Counter *>(stat)->value();
        }
        return ops;
    };

    std::uint64_t last_ops = progress();
    Tick last_progress_tick = 0;
    std::uint64_t events = 0;
    bool done = false;

    while (!done) {
        // Run a burst, then poll completion and the deadlock watchdog.
        for (unsigned k = 0; k < 512; ++k) {
            if (!_eq.runOne()) {
                if (!all_done()) {
                    unsigned live = 0;
                    for (auto &n : _nodes)
                        live += n->processor().liveThreads();
                    panic("machine: event queue drained with %u live "
                          "threads — deadlock", live);
                }
                break;
            }
            ++events;
        }
        done = all_done();
        if (done)
            break;
        if (max_cycles && _eq.now() > max_cycles) {
            result.cycles = _eq.now();
            result.completed = false;
            result.events = events;
            return result;
        }
        const std::uint64_t ops = progress();
        if (ops != last_ops) {
            last_ops = ops;
            last_progress_tick = _eq.now();
        } else if (_eq.now() - last_progress_tick > _cfg.watchdogCycles) {
            dumpStats(std::cerr);
            panic("machine: no memory operation completed for %llu "
                  "cycles — livelock/deadlock at tick %llu",
                  (unsigned long long)_cfg.watchdogCycles,
                  (unsigned long long)_eq.now());
        }
    }

    result.cycles = done_tick;
    result.completed = true;

    // Drain in-flight protocol traffic (write-backs, final acks) so the
    // coherence monitor sees a quiescent machine.
    events += _eq.run();
    result.events = events;

    // Hooks must not dangle past this call.
    for (auto &node : _nodes)
        node->processor().setOnThreadDone(nullptr);
    return result;
}

bool
Machine::allThreadsDone() const
{
    for (const auto &node : _nodes)
        if (!node->processor().allDone())
            return false;
    return true;
}

std::uint64_t
Machine::sumCounter(const std::string &component,
                    const std::string &name) const
{
    std::uint64_t total = 0;
    for (const auto &node : _nodes) {
        const StatSet *set = node->statSet(component);
        if (!set)
            continue;
        if (const Stat *stat = set->find(name))
            total += static_cast<const Counter *>(stat)->value();
    }
    return total;
}

double
Machine::meanAccumulator(const std::string &component,
                         const std::string &name) const
{
    double sum = 0.0;
    std::uint64_t count = 0;
    for (const auto &node : _nodes) {
        const StatSet *set = node->statSet(component);
        if (!set)
            continue;
        if (const Stat *stat = set->find(name)) {
            const auto *acc = static_cast<const Accumulator *>(stat);
            sum += acc->sum();
            count += acc->count();
        }
    }
    return count ? sum / static_cast<double>(count) : 0.0;
}

double
Machine::overflowFraction() const
{
    const std::uint64_t traps = sumCounter("mem", "read_traps") +
                                sumCounter("mem", "write_traps");
    const std::uint64_t reqs =
        sumCounter("mem", "rreq") + sumCounter("mem", "wreq");
    return reqs ? static_cast<double>(traps) / reqs : 0.0;
}

void
Machine::dumpStats(std::ostream &os) const
{
    for (const auto &node : _nodes) {
        for (const char *comp : {"proc", "cache", "mem", "ipi", "handler"}) {
            const StatSet *set = node->statSet(comp);
            if (set)
                set->dump(os);
        }
    }
}

} // namespace limitless
