#include "machine/machine.hh"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>

#include "directory/chained_dir.hh"
#include "directory/full_map_dir.hh"
#include "directory/limited_dir.hh"
#include "directory/limitless_dir.hh"
#include <unistd.h>

#include "obs/flight_recorder.hh"
#include "obs/host_profiler.hh"
#include "obs/json.hh"
#include "obs/stats_json.hh"
#include "obs/telemetry.hh"
#include "sim/log.hh"
#include "sim/parallel_kernel.hh"

namespace limitless
{

Machine::Machine(const MachineConfig &cfg)
    : _cfg(cfg), _topo(cfg.makeTopology()),
      _amap(cfg.numNodes, cfg.lineBytes, cfg.bytesPerNode, cfg.mapping,
            cfg.topology.clusterSize)
{
    assert(_topo->numNodes() == cfg.numNodes &&
           "grid dimensions must cover every node");

    // Two-level mode needs a real chip (cluster of >= 2 nodes) and a
    // scheme with sharing to delegate; otherwise it degenerates to the
    // flat machine (no chip homes, flat request routing) — a property
    // the tests pin down to byte-identical stats. The CLI front ends
    // reject --hier with a 1-node cluster up front so users get a clear
    // error rather than a silent flat run.
    if (cfg.hier && cfg.topology.clusterSize >= 2 &&
        cfg.protocol.kind != ProtocolKind::privateOnly)
        _amap.setHier(true);

    if (cfg.makeNetwork)
        _net = cfg.makeNetwork(_eq);
    else if (cfg.network == NetworkKind::mesh)
        _net = std::make_unique<MeshNetwork>(_eq, _topo, cfg.meshParams);
    else
        _net = std::make_unique<IdealNetwork>(_eq, _topo, cfg.idealParams);
    assert(_net->numNodes() >= cfg.numNodes &&
           "network must cover every node");

    // Spatial partitioning for the window-parallel kernel. Whole
    // clusters stay in one partition (the chip boundary is the natural
    // seam under --hier; for flat machines cluster == 1 node), and the
    // thread count clamps to the partitionable units so every partition
    // owns at least one. Cross-partition influence travels only through
    // the mesh (>= one router cycle), which is what makes same-window
    // parallel execution exact — the ideal network delivers in the same
    // tick and is therefore rejected.
    if (cfg.simThreads > 1) {
        if (cfg.makeNetwork || cfg.network != NetworkKind::mesh)
            fatal("simThreads > 1 requires the built-in mesh network "
                  "(cross-partition lookahead comes from its hop latency)");
        if (!cfg.txnTraceOut.empty())
            fatal("simThreads > 1 does not support transaction tracing");
        const unsigned cluster =
            cfg.topology.clusterSize > 1 ? cfg.topology.clusterSize : 1;
        const unsigned units = std::max(1u, cfg.numNodes / cluster);
        _numParts = std::min(cfg.simThreads, units);
    }
    _partOf.resize(cfg.numNodes, 0);
    _partQueues.assign(1, &_eq);
    if (_numParts > 1) {
        const unsigned cluster =
            cfg.topology.clusterSize > 1 ? cfg.topology.clusterSize : 1;
        const unsigned units = std::max(1u, cfg.numNodes / cluster);
        for (NodeId i = 0; i < cfg.numNodes; ++i) {
            const unsigned unit = std::min(i / cluster, units - 1);
            _partOf[i] = static_cast<unsigned>(
                static_cast<std::uint64_t>(unit) * _numParts / units);
        }
        for (unsigned p = 1; p < _numParts; ++p) {
            _workerQueues.push_back(std::make_unique<EventQueue>());
            _partQueues.push_back(_workerQueues.back().get());
        }
        auto *mesh = dynamic_cast<MeshNetwork *>(_net.get());
        mesh->setShard(_partOf, _partQueues);
        // Host-utilization accounting for the run; allocated here so
        // the telemetry probes registered below can capture it.
        _pkStats = std::make_unique<ParallelKernelStats>(_numParts);
    }

    _nodes.reserve(cfg.numNodes);
    for (NodeId i = 0; i < cfg.numNodes; ++i)
        _nodes.push_back(std::make_unique<Node>(*_partQueues[_partOf[i]],
                                                i, _amap, _cfg, *_net,
                                                _policy));

    // Let tick-less components (directories) timestamp trace events off
    // this machine's clock.
    FlightRecorder &fr = FlightRecorder::instance();
    fr.setClock(&_eq);

    // The tracer follows this machine's config either way: enabling
    // starts a fresh capture, disabling guarantees back-to-back runs in
    // one process (sweeps, tests) never inherit a stale tracer.
    if (!cfg.txnTraceOut.empty())
        fr.txn().enable(cfg.txnTopK);
    else
        fr.txn().disable();

    if (cfg.metricsInterval > 0)
        setupTelemetry();
}

void
Machine::setupTelemetry()
{
    _telemetry = std::make_unique<Telemetry>(_eq, _cfg.metricsInterval);
    Telemetry &t = *_telemetry;
    t.setMeta("protocol", _cfg.protocol.name());
    t.setMeta("nodes", std::to_string(_cfg.numNodes));
    t.setMeta("seed", std::to_string(_cfg.seed));

    // Counters are resolved once here; each probe is then a flat sum of
    // pre-found pointers (the watchdog's idiom), so a sample never does
    // name lookups.
    using CompStat = std::pair<const char *, const char *>;
    auto sum = [this](std::vector<CompStat> stats) {
        std::vector<const Counter *> cs;
        for (const auto &[comp, name] : stats)
            for (const auto &node : _nodes)
                if (const StatSet *set = node->statSet(comp))
                    if (const Stat *s = set->find(name))
                        cs.push_back(static_cast<const Counter *>(s));
        return Telemetry::Probe([cs = std::move(cs)]() {
            double total = 0.0;
            for (const Counter *c : cs)
                total += static_cast<double>(c->value());
            return total;
        });
    };

    t.addRate("proc.ops", sum({{"proc", "ops"}}));

    // Cache layer: windowed miss / invalidation rates.
    t.addRate("cache.misses", sum({{"cache", "misses"}}));
    t.addRatio("cache.miss_rate", sum({{"cache", "misses"}}),
               sum({{"cache", "hits"}, {"cache", "misses"}}));
    t.addRate("cache.invs_rx", sum({{"cache", "invs_received"}}));
    t.addGauge("cache.waiting", [this]() {
        double n = 0.0;
        for (const auto &node : _nodes)
            n += static_cast<double>(node->cache().waitingAccesses());
        return n;
    });

    // Home/directory layer. mem.m is the windowed overflow fraction;
    // windows weighted by mem.reqs recover the run-level m exactly.
    t.addRate("mem.reqs", sum({{"mem", "rreq"}, {"mem", "wreq"}}));
    t.addRate("mem.traps",
              sum({{"mem", "read_traps"}, {"mem", "write_traps"}}));
    t.addRatio("mem.m",
               sum({{"mem", "read_traps"}, {"mem", "write_traps"}}),
               sum({{"mem", "rreq"}, {"mem", "wreq"}}));
    t.addRate("mem.trap_cycles", sum({{"mem", "trap_cycles"}}));
    t.addGauge("dir.entries", [this]() {
        DirOccupancy occ;
        for (const auto &node : _nodes)
            node->mem().directory().occupancy(occ);
        return static_cast<double>(occ.entries);
    });
    t.addGauge("dir.ptr_util", [this]() {
        DirOccupancy occ;
        for (const auto &node : _nodes)
            node->mem().directory().occupancy(occ);
        return occ.pointerSlots ? static_cast<double>(occ.pointersUsed) /
                                      static_cast<double>(occ.pointerSlots)
                                : 0.0;
    });
    t.addGauge("dir.sw_entries", [this]() {
        double n = 0.0;
        for (const auto &node : _nodes)
            n += static_cast<double>(
                node->mem().softwareTable().entries());
        return n;
    });
    t.addGauge("dir.sw_bytes", [this]() {
        double n = 0.0;
        for (const auto &node : _nodes)
            n += static_cast<double>(
                node->mem().softwareTable().footprintBytes());
        return n;
    });

    // Chip-home layer (two-level mode only): per-level m(t), pointer
    // occupancy and backlog, so the two levels' software-spill rates
    // can be read side by side with the global mem.* series.
    if (_cfg.hier && _nodes[0]->chipHome()) {
        t.addRate("chip.reqs", sum({{"chip", "rreq"}, {"chip", "wreq"}}));
        t.addRate("chip.traps", sum({{"chip", "read_traps"},
                                     {"chip", "write_traps"}}));
        t.addRatio("chip.m",
                   sum({{"chip", "read_traps"}, {"chip", "write_traps"}}),
                   sum({{"chip", "rreq"}, {"chip", "wreq"}}));
        t.addRate("chip.trap_cycles", sum({{"chip", "trap_cycles"}}));
        t.addRate("chip.parent_reqs", sum({{"chip", "parent_reqs"}}));
        t.addRate("chip.local_grants", sum({{"chip", "local_grants"}}));
        t.addGauge("chip.ptr_util", [this]() {
            DirOccupancy occ;
            for (const auto &node : _nodes)
                if (const ChipHomeController *ch = node->chipHome())
                    ch->directory().occupancy(occ);
            return occ.pointerSlots
                       ? static_cast<double>(occ.pointersUsed) /
                             static_cast<double>(occ.pointerSlots)
                       : 0.0;
        });
        t.addGauge("chip.sw_entries", [this]() {
            double n = 0.0;
            for (const auto &node : _nodes)
                if (const ChipHomeController *ch = node->chipHome())
                    n += static_cast<double>(
                        ch->softwareTable().entries());
            return n;
        });
        t.addGauge("chip.queue_depth", [this]() {
            double n = 0.0;
            for (const auto &node : _nodes)
                if (const ChipHomeController *ch = node->chipHome())
                    n += static_cast<double>(ch->queueDepth());
            return n;
        });
    }

    // Kernel layer: trap backlog and emulation occupancy. kern.occupancy
    // is the fraction of this window's node-cycles spent in trap code
    // (dispatcher occupancy + inline Ts charges), averaged over nodes.
    t.addGauge("trap.queue_depth", [this]() {
        double n = 0.0;
        for (const auto &node : _nodes)
            n += static_cast<double>(node->ipi().depth());
        return n;
    });
    t.addGauge("trap.queue_max", [this]() {
        std::size_t peak = 0;
        for (const auto &node : _nodes)
            peak = std::max(peak, node->ipi().depth());
        return static_cast<double>(peak);
    });
    t.addRate("trap.cycles", sum({{"trap", "cycles"}}));
    t.addRatio("kern.occupancy",
               sum({{"trap", "cycles"}, {"mem", "trap_cycles"}}),
               [this]() {
                   return static_cast<double>(_eq.now()) * _cfg.numNodes;
               });

    // Network layer (mesh only): utilization is flit-hops per
    // router-cycle, correct even for the final partial window because
    // both deltas cover the same span.
    if (auto *mesh = dynamic_cast<MeshNetwork *>(_net.get())) {
        mesh->enableTelemetry();
        const StatSet &ns = mesh->stats();
        const auto *packets =
            static_cast<const Counter *>(ns.find("packets"));
        const auto *hops =
            static_cast<const Counter *>(ns.find("flit_hops"));
        auto hopProbe = [hops]() {
            return static_cast<double>(hops->value());
        };
        t.addRate("net.packets", [packets]() {
            return static_cast<double>(packets->value());
        });
        t.addRate("net.flit_hops", hopProbe);
        t.addRatio("net.util", hopProbe, [this]() {
            return static_cast<double>(_eq.now()) * _cfg.numNodes;
        });
        t.addGauge("net.peak_queue", [mesh]() {
            return static_cast<double>(mesh->takeWindowPeakDepth());
        });
        t.addSummary("net_hotspots", [this, mesh](std::ostream &os) {
            const auto *telem = mesh->meshTelemetry();
            std::vector<std::pair<std::uint64_t, unsigned>> load;
            load.reserve(telem->flitHops.size());
            for (unsigned r = 0; r < telem->flitHops.size(); ++r)
                load.emplace_back(telem->flitHops[r], r);
            std::sort(load.begin(), load.end(), [](auto &a, auto &b) {
                return a.first != b.first ? a.first > b.first
                                          : a.second < b.second;
            });
            const std::size_t k = std::min<std::size_t>(8, load.size());
            os << "[";
            for (std::size_t i = 0; i < k; ++i) {
                os << (i ? ", " : "")
                   << "{\"router\": " << load[i].second
                   << ", \"x\": " << _topo->xOf(load[i].second)
                   << ", \"y\": " << _topo->yOf(load[i].second)
                   << ", \"flit_hops\": " << load[i].first << "}";
            }
            os << "]";
        });
    }

    // Parallel-kernel (host) utilization layer, opt-in via
    // cfg.pkTelemetry: these columns describe the *host* execution of a
    // parallel run (barrier waits, serial-tail seconds), so unlike
    // every simulated-machine column above they are not byte-identical
    // across thread counts — and the cross-thread determinism suite
    // byte-compares the default column set. Sampling happens in the
    // serial window tail on the coordinator, where every counter except
    // the (atomic) barrier waits is barrier-ordered and stable.
    if (_numParts > 1 && _cfg.pkTelemetry && _pkStats) {
        ParallelKernelStats *pk = _pkStats.get();
        t.addRate("pk.windows", [pk]() {
            return static_cast<double>(pk->windows);
        });
        t.addRate("pk.coupled_windows", [pk]() {
            return static_cast<double>(pk->coupledWindows);
        });
        t.addRate("pk.serial_tail_s", [pk]() {
            return pk->serialTailSeconds;
        });
        if (auto *mesh = dynamic_cast<MeshNetwork *>(_net.get()))
            t.addRate("pk.xpart_flits", [mesh]() {
                return static_cast<double>(mesh->crossPartitionFlits());
            });
        for (unsigned p = 0; p < _numParts; ++p) {
            t.addRate("pk.part_events." + std::to_string(p),
                      [this, p]() {
                          return static_cast<double>(
                              _partQueues[p]->executedEvents());
                      });
            t.addRate("pk.barrier_wait_s." + std::to_string(p),
                      [pk, p]() { return pk->barrierWaitSeconds(p); });
        }
    }

    // Per-node emulation occupancy detail (cumulative trap cycles per
    // node at write time; 64 CSV columns would drown the time-series).
    t.addSummary("trap_cycles_per_node", [this](std::ostream &os) {
        auto counterOf = [](const StatSet *set, const char *name) {
            const Stat *s = set ? set->find(name) : nullptr;
            return s ? static_cast<const Counter *>(s)->value()
                     : std::uint64_t{0};
        };
        os << "[";
        for (std::size_t i = 0; i < _nodes.size(); ++i) {
            const std::uint64_t cycles =
                counterOf(_nodes[i]->statSet("trap"), "cycles") +
                counterOf(_nodes[i]->statSet("mem"), "trap_cycles");
            os << (i ? ", " : "") << cycles;
        }
        os << "]";
    });

    // Producer-side histogram sinks (the only telemetry cost the hot
    // path ever sees, and only when this function has run).
    Log2Histogram *ws = t.addHistogram(
        "worker_set",
        "worker-set size at RREQ/WREQ pre-dispatch (hw + sw sharers)",
        10);
    Log2Histogram *svc = t.addHistogram(
        "trap_service", "trap service time per overflow (cycles)", 16);
    _wsSink = ws;
    _svcSink = svc;
    for (auto &node : _nodes) {
        node->mem().setTelemetrySinks(ws, svc);
        if (ChipHomeController *ch = node->chipHome())
            ch->setTelemetrySinks(ws, svc);
        node->dispatcher().setServiceTimeSink(svc);
    }
}

std::string
Machine::writeTelemetry(const std::string &csvPath) const
{
    if (!_telemetry)
        fatal("writeTelemetry: telemetry disabled (metricsInterval == 0)");
    std::ofstream csv(csvPath);
    if (!csv)
        fatal("cannot open telemetry CSV '%s'", csvPath.c_str());
    _telemetry->writeCsv(csv);

    const std::string jsonPath = telemetryJsonPathFor(csvPath);
    std::ofstream js(jsonPath);
    if (!js)
        fatal("cannot open telemetry JSON '%s'", jsonPath.c_str());
    _telemetry->writeJson(js);
    return jsonPath;
}

std::string
Machine::writeTxnTrace() const
{
    if (_cfg.txnTraceOut.empty())
        fatal("writeTxnTrace: tracer disabled (txnTraceOut empty)");
    if (!FlightRecorder::instance().txn().writeJsonFile(_cfg.txnTraceOut))
        fatal("cannot open txn trace '%s'", _cfg.txnTraceOut.c_str());
    return _cfg.txnTraceOut;
}

Machine::~Machine()
{
    FlightRecorder &fr = FlightRecorder::instance();
    if (fr.clock() == &_eq)
        fr.setClock(nullptr);
}

void
Machine::spawnOn(NodeId node_id, Processor::ThreadFn fn)
{
    _nodes.at(node_id)->processor().spawn(std::move(fn));
    ++_spawned;
}

RunResult
Machine::run(Tick max_cycles)
{
    if (_numParts > 1)
        return runParallel(max_cycles);

    PROF_SCOPE("machine.run");
    RunResult result;
    if (_spawned == 0)
        fatal("Machine::run with no threads spawned");

    const auto host_start = std::chrono::steady_clock::now();
    auto host_elapsed = [host_start]() {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - host_start)
            .count();
    };

    unsigned finished = 0;
    Tick done_tick = 0;
    for (auto &node : _nodes) {
        node->processor().setOnThreadDone([&]() {
            ++finished;
            if (finished == _spawned)
                done_tick = _eq.now();
        });
    }
    for (auto &node : _nodes)
        node->processor().start();

    if (_telemetry)
        _telemetry->start([this]() { return allThreadsDone(); });

    auto all_done = [&]() { return finished == _spawned; };

    // The watchdog polls total ops once per event burst; resolve the
    // counters up front instead of re-finding them by name each poll.
    std::vector<const Counter *> op_counters;
    op_counters.reserve(_nodes.size());
    for (const auto &node : _nodes)
        op_counters.push_back(static_cast<const Counter *>(
            node->statSet("proc")->find("ops")));
    auto progress = [&op_counters]() {
        std::uint64_t ops = 0;
        for (const Counter *c : op_counters)
            ops += c->value();
        return ops;
    };

    std::uint64_t last_ops = progress();
    Tick last_progress_tick = 0;
    std::uint64_t events = 0;
    bool done = false;

    while (!done) {
        // Run a burst, then poll completion and the deadlock watchdog.
        // runBurst returns short only when the queue drained.
        const std::uint64_t n = _eq.runBurst(512);
        events += n;
        if (n < 512 && !all_done()) {
            unsigned live = 0;
            for (auto &nd : _nodes)
                live += nd->processor().liveThreads();
            panic("machine: event queue drained with %u live "
                  "threads — deadlock", live);
        }
        done = all_done();
        if (done)
            break;
        if (max_cycles && _eq.now() > max_cycles) {
            result.cycles = _eq.now();
            result.completed = false;
            result.events = events;
            result.hostSeconds = host_elapsed();
            return result;
        }
        const std::uint64_t ops = progress();
        if (ops != last_ops) {
            last_ops = ops;
            last_progress_tick = _eq.now();
        } else if (_eq.now() - last_progress_tick > _cfg.watchdogCycles) {
            dumpStats(std::cerr);
            panic("machine: no memory operation completed for %llu "
                  "cycles — livelock/deadlock at tick %llu",
                  (unsigned long long)_cfg.watchdogCycles,
                  (unsigned long long)_eq.now());
        }
    }

    result.cycles = done_tick;
    result.completed = true;

    // Drain in-flight protocol traffic (write-backs, final acks) so the
    // coherence monitor sees a quiescent machine.
    events += _eq.run();
    result.events = events;
    result.hostSeconds = host_elapsed();

    // Close the final (partial) telemetry window so window deltas sum
    // exactly to the run totals, drain traffic included.
    if (_telemetry)
        _telemetry->finish();

    // Hooks must not dangle past this call.
    for (auto &node : _nodes)
        node->processor().setOnThreadDone(nullptr);
    return result;
}

RunResult
Machine::runParallel(Tick max_cycles)
{
    PROF_SCOPE("machine.run_parallel");
    RunResult result;
    if (_spawned == 0)
        fatal("Machine::run with no threads spawned");

    const auto host_start = std::chrono::steady_clock::now();
    auto host_elapsed = [host_start]() {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - host_start)
            .count();
    };

    // Per-partition completion counts. A thread only ever retires on its
    // own partition's worker, so each slot has a single writer; the
    // coordinator folds them at window barriers (padded so neighbouring
    // partitions don't false-share).
    struct alignas(64) PartCount
    {
        std::uint64_t v = 0;
    };
    std::vector<PartCount> finishedShard(_numParts);
    for (unsigned i = 0; i < _nodes.size(); ++i) {
        std::uint64_t *slot = &finishedShard[_partOf[i]].v;
        _nodes[i]->processor().setOnThreadDone([slot]() { ++*slot; });
    }
    for (auto &node : _nodes)
        node->processor().start();

    if (_telemetry)
        _telemetry->start([this]() { return allThreadsDone(); });

    // Watchdog probe, resolved once as in the serial loop. Only the
    // coordinator evaluates it, between window barriers, so the reads
    // are synchronized even though the counters live on every partition.
    std::vector<const Counter *> op_counters;
    op_counters.reserve(_nodes.size());
    for (const auto &node : _nodes)
        op_counters.push_back(static_cast<const Counter *>(
            node->statSet("proc")->find("ops")));
    auto progress = [&op_counters]() {
        std::uint64_t ops = 0;
        for (const Counter *c : op_counters)
            ops += c->value();
        return ops;
    };

    // Swap the shared telemetry histogram sinks for per-partition
    // shadows; bucket increments commute, so merging them back after the
    // run reproduces the serial histograms exactly.
    std::vector<Log2Histogram> ws_shadow, svc_shadow;
    if (_wsSink) {
        ws_shadow.assign(_numParts, Log2Histogram(_wsSink->numBuckets()));
        svc_shadow.assign(_numParts,
                          Log2Histogram(_svcSink->numBuckets()));
        for (unsigned i = 0; i < _nodes.size(); ++i) {
            const unsigned p = _partOf[i];
            _nodes[i]->mem().setTelemetrySinks(&ws_shadow[p],
                                               &svc_shadow[p]);
            if (ChipHomeController *ch = _nodes[i]->chipHome())
                ch->setTelemetrySinks(&ws_shadow[p], &svc_shadow[p]);
            _nodes[i]->dispatcher().setServiceTimeSink(&svc_shadow[p]);
        }
    }

    // Latency stamps defer into per-partition buffers and replay into
    // the main tracker in global tick order after the run (see
    // LatencyTracker::DeferredStamp for the exactness argument).
    std::vector<std::vector<LatencyTracker::DeferredStamp>> lat_bufs(
        _numParts);

    std::uint64_t base_events = 0;
    std::vector<std::uint64_t> base_part_events(_numParts, 0);
    for (unsigned p = 0; p < _numParts; ++p) {
        base_part_events[p] = _partQueues[p]->executedEvents();
        base_events += base_part_events[p];
    }

    std::uint64_t last_ops = progress();
    Tick last_progress_tick = 0;
    std::uint64_t windows = 0;
    bool threads_done = false;
    Tick done_tick = 0;
    bool aborted = false;
    Tick abort_tick = 0;

    ParallelKernel::Hooks hooks;
    hooks.threadInit = [&](unsigned p) {
        // Every partition's thread-local recorder stamps off its own
        // partition clock and defers latency hooks — partition 0 (the
        // caller's recorder, the one holding the run's state) included,
        // so the replay below sees one uniformly ordered stream.
        FlightRecorder &fr = FlightRecorder::instance();
        fr.setClock(_partQueues[p]);
        fr.latency().deferTo(&lat_bufs[p], _partQueues[p]);
    };
    hooks.onWindow = [&](Tick t) -> bool {
        if (!threads_done) {
            std::uint64_t fin = 0;
            for (const PartCount &c : finishedShard)
                fin += c.v;
            if (fin == _spawned) {
                threads_done = true;
                // The last thread retired during this window, so the
                // serial loop's done_tick (its now() at the hook) is
                // exactly the window tick.
                done_tick = t;
            }
        }
        if (threads_done)
            return true; // keep running: drain in-flight traffic
        if (max_cycles && t > max_cycles) {
            aborted = true;
            abort_tick = t;
            return false;
        }
        // A window is one simulated tick, so poll the watchdog on a
        // stride instead of every window; the panic trips at most 64
        // windows later than the serial loop's burst-granularity check.
        if ((++windows & 63) == 0) {
            const std::uint64_t ops = progress();
            if (ops != last_ops) {
                last_ops = ops;
                last_progress_tick = t;
            } else if (t - last_progress_tick > _cfg.watchdogCycles) {
                dumpStats(std::cerr);
                panic("machine: no memory operation completed for %llu "
                      "cycles — livelock/deadlock at tick %llu",
                      (unsigned long long)_cfg.watchdogCycles,
                      (unsigned long long)t);
            }
        }
        return true;
    };

    auto *mesh = dynamic_cast<MeshNetwork *>(_net.get());
    // Hand the kernel the stats sink only when someone will consume it
    // (pk.* telemetry or the host profiler): the timed barrier path
    // costs two clock reads per arrival per worker per window, which is
    // measurable on the thousands of tiny windows a run executes. The
    // per-partition event accounting below is free (post-join) and
    // stays on unconditionally.
    const bool time_barriers = _cfg.pkTelemetry || HostProfiler::enabled();
    ParallelKernel kernel(_partQueues, mesh, _topo->minHopLookahead(),
                          time_barriers ? _pkStats.get() : nullptr);
    kernel.run(hooks);

    // Back on the caller thread, workers joined. Return the recorder to
    // direct mode and replay the deferred latency stamps in global tick
    // order (stable sort keeps each partition's own order within a tick).
    FlightRecorder &fr = FlightRecorder::instance();
    fr.setClock(&_eq);
    fr.latency().deferTo(nullptr, nullptr);
    std::size_t total_stamps = 0;
    for (const auto &buf : lat_bufs)
        total_stamps += buf.size();
    std::vector<LatencyTracker::DeferredStamp> stamps;
    stamps.reserve(total_stamps);
    for (const auto &buf : lat_bufs)
        stamps.insert(stamps.end(), buf.begin(), buf.end());
    std::stable_sort(stamps.begin(), stamps.end(),
                     [](const LatencyTracker::DeferredStamp &a,
                        const LatencyTracker::DeferredStamp &b) {
                         return a.now < b.now;
                     });
    for (const auto &s : stamps)
        fr.latency().replay(s);

    // Fold the per-partition histogram shadows back into the shared
    // sinks and repoint the producers at them.
    if (_wsSink) {
        for (unsigned p = 0; p < _numParts; ++p) {
            _wsSink->merge(ws_shadow[p]);
            _svcSink->merge(svc_shadow[p]);
        }
        for (auto &node : _nodes) {
            node->mem().setTelemetrySinks(_wsSink, _svcSink);
            if (ChipHomeController *ch = node->chipHome())
                ch->setTelemetrySinks(_wsSink, _svcSink);
            node->dispatcher().setServiceTimeSink(_svcSink);
        }
    }

    std::uint64_t events = 0;
    for (EventQueue *q : _partQueues)
        events += q->executedEvents();
    events -= base_events;

    // Per-partition event totals for the utilization exports (plain
    // writes: the workers are joined).
    for (unsigned p = 0; p < _numParts; ++p)
        _pkStats->parts[p].events +=
            _partQueues[p]->executedEvents() - base_part_events[p];

    for (auto &node : _nodes)
        node->processor().setOnThreadDone(nullptr);

    if (aborted) {
        result.cycles = abort_tick;
        result.completed = false;
        result.events = events;
        result.hostSeconds = host_elapsed();
        return result;
    }

    if (!threads_done) {
        unsigned live = 0;
        for (auto &nd : _nodes)
            live += nd->processor().liveThreads();
        panic("machine: event queue drained with %u live "
              "threads — deadlock", live);
    }

    result.cycles = done_tick;
    result.completed = true;
    result.events = events;
    result.hostSeconds = host_elapsed();

    // The kernel runs to full drain, so the final (partial) telemetry
    // window closes over the same quiescent machine as the serial path.
    if (_telemetry)
        _telemetry->finish();
    return result;
}

bool
Machine::allThreadsDone() const
{
    for (const auto &node : _nodes)
        if (!node->processor().allDone())
            return false;
    return true;
}

std::uint64_t
Machine::sumCounter(const std::string &component,
                    const std::string &name) const
{
    std::uint64_t total = 0;
    for (const auto &node : _nodes) {
        const StatSet *set = node->statSet(component);
        if (!set)
            continue;
        if (const Stat *stat = set->find(name))
            total += static_cast<const Counter *>(stat)->value();
    }
    return total;
}

double
Machine::meanAccumulator(const std::string &component,
                         const std::string &name) const
{
    double sum = 0.0;
    std::uint64_t count = 0;
    for (const auto &node : _nodes) {
        const StatSet *set = node->statSet(component);
        if (!set)
            continue;
        if (const Stat *stat = set->find(name)) {
            const auto *acc = static_cast<const Accumulator *>(stat);
            sum += acc->sum();
            count += acc->count();
        }
    }
    return count ? sum / static_cast<double>(count) : 0.0;
}

double
Machine::overflowFraction() const
{
    const std::uint64_t traps = sumCounter("mem", "read_traps") +
                                sumCounter("mem", "write_traps");
    const std::uint64_t reqs =
        sumCounter("mem", "rreq") + sumCounter("mem", "wreq");
    return reqs ? static_cast<double>(traps) / reqs : 0.0;
}

void
Machine::dumpStats(std::ostream &os) const
{
    for (const auto &node : _nodes) {
        for (const char *comp :
             {"proc", "cache", "mem", "chip", "ipi", "handler"}) {
            const StatSet *set = node->statSet(comp);
            if (set)
                set->dump(os);
        }
    }
}

namespace
{

/** Components aggregated and detailed by dumpStatsJson. */
constexpr const char *statComponents[] = {"proc", "cache", "mem",
                                          "chip", "ipi",   "handler",
                                          "trap"};

} // namespace

void
Machine::dumpStatsJson(std::ostream &os, Tick cycles,
                       const RunResult *run) const
{
    const PhaseBreakdown phases =
        FlightRecorder::instance().latency().snapshot();
    const double m = overflowFraction();
    const double ts = static_cast<double>(_cfg.protocol.softwareLatency);

    os << "{\n";
    // v2 (additive, see docs/OBSERVABILITY.md bump policy): every
    // host-dependent field lives under the one "host" object, so tools
    // diff deterministic fields by skipping exactly that subtree.
    os << "  \"schema\": \"limitless-stats-v1\",\n";
    os << "  \"schema_version\": 2,\n";
    os << "  \"protocol\": ";
    jsonEscape(os, _cfg.protocol.name());
    os << ",\n";
    os << "  \"nodes\": " << _cfg.numNodes << ",\n";
    os << "  \"seed\": " << _cfg.seed << ",\n";
    os << "  \"cycles\": " << cycles << ",\n";
    // The paper's model terms: T = Th + m * Ts.
    os << "  \"model\": {\"m\": " << m << ", \"ts\": " << ts
       << ", \"m_ts\": " << m * ts << "},\n";
    os << "  \"topology\": {\"kind\": ";
    jsonEscape(os, _topo->name());
    os << ", \"width\": " << _topo->width()
       << ", \"height\": " << _topo->height()
       << ", \"cluster_size\": " << _cfg.topology.clusterSize
       << ", \"average_hops\": " << _topo->averageHops();
    if (_amap.hier())
        os << ", \"hier\": true";
    os << "},\n";
    // Directory-storage comparison (the paper's Section 1 motivation):
    // bits per entry for each scheme at the canonical scales plus this
    // machine's own node count. Full-map is a multi-word presence
    // vector (exactly num_nodes bits); the others grow as O(log N).
    {
        os << "  \"directory_storage\": {\"node_counts\": ";
        std::vector<unsigned> counts{64, 256, 1024};
        if (std::find(counts.begin(), counts.end(), _cfg.numNodes) ==
            counts.end())
            counts.insert(counts.begin(), _cfg.numNodes);
        os << "[";
        for (std::size_t i = 0; i < counts.size(); ++i)
            os << (i ? ", " : "") << counts[i];
        os << "], \"schemes\": [";
        bool first_scheme = true;
        auto row = [&](const char *label, auto &&bits) {
            os << (first_scheme ? "" : ", ");
            first_scheme = false;
            os << "{\"scheme\": ";
            jsonEscape(os, label);
            os << ", \"bits_per_entry\": [";
            for (std::size_t i = 0; i < counts.size(); ++i)
                os << (i ? ", " : "") << bits(counts[i]);
            os << "]}";
        };
        row("full-map",
            [](unsigned n) { return FullMapDir(n).bitsPerEntry(n); });
        row("dir4nb",
            [](unsigned n) { return LimitedDir(4).bitsPerEntry(n); });
        row("limitless4", [](unsigned n) {
            return LimitlessDir(0, 4, true).bitsPerEntry(n);
        });
        row("chained",
            [](unsigned n) { return ChainedDir().bitsPerEntry(n); });
        os << "]";
        // Two-level variants (hier runs only, so the flat document is
        // byte-stable): the chip directory sizes over the chip's own
        // node count, while the inter-chip directory shrinks to one
        // entry bit-budget per *chip* — the product is the total
        // per-line directory state of the composed scheme.
        if (_amap.hier()) {
            const std::vector<unsigned> chips{4, 8, 16};
            os << ", \"hier\": {\"chip_sizes\": [";
            for (std::size_t i = 0; i < chips.size(); ++i)
                os << (i ? ", " : "") << chips[i];
            os << "], \"schemes\": [";
            bool first_hier = true;
            auto hierRow = [&](const char *label, auto &&bits) {
                os << (first_hier ? "" : ", ");
                first_hier = false;
                os << "{\"scheme\": ";
                jsonEscape(os, label);
                os << ", \"per_chip_bits\": [";
                for (std::size_t i = 0; i < chips.size(); ++i)
                    os << (i ? ", " : "") << bits(chips[i]);
                os << "], \"inter_chip_bits\": [";
                for (std::size_t ci = 0; ci < chips.size(); ++ci) {
                    os << (ci ? ", " : "") << "[";
                    for (std::size_t i = 0; i < counts.size(); ++i) {
                        const unsigned nchips =
                            (counts[i] + chips[ci] - 1) / chips[ci];
                        os << (i ? ", " : "") << bits(nchips);
                    }
                    os << "]";
                }
                os << "]}";
            };
            hierRow("full-map", [](unsigned n) {
                return FullMapDir(n).bitsPerEntry(n);
            });
            hierRow("dir4nb", [](unsigned n) {
                return LimitedDir(4).bitsPerEntry(n);
            });
            hierRow("limitless4", [](unsigned n) {
                return LimitlessDir(0, 4, true).bitsPerEntry(n);
            });
            hierRow("chained", [](unsigned n) {
                return ChainedDir().bitsPerEntry(n);
            });
            os << "]}";
        }
        os << "},\n";
    }
    if (run) {
        // The one host-dependent subtree (schema_version 2): everything
        // under "host" varies with the machine running the simulator —
        // wall time, throughput, thread scheduling, profiler output —
        // while everything outside it is deterministic for a given
        // config. Consumers (limitless-perfdiff, the parallel-smoke CI
        // diff) compare deterministic fields exactly by skipping this
        // subtree, with no field-name grepping.
        char hostname[256] = "unknown";
        if (gethostname(hostname, sizeof hostname) != 0)
            std::strcpy(hostname, "unknown");
        hostname[sizeof hostname - 1] = '\0';
        os << "  \"host\": {\n";
        os << "    \"seconds\": " << run->hostSeconds << ",\n";
        os << "    \"events\": " << run->events << ",\n";
        os << "    \"events_per_sec\": " << run->eventsPerSecond()
           << ",\n";
        os << "    \"hostname\": ";
        jsonEscape(os, hostname);
        // windows == 0 means the kernel ran without the stats sink
        // (neither pk telemetry nor the profiler wanted it), so there
        // is no utilization data to report.
        if (_pkStats && _pkStats->windows > 0) {
            const ParallelKernelStats &pk = *_pkStats;
            os << ",\n    \"parallel_kernel\": {\n";
            os << "      \"sim_threads\": " << pk.partitions << ",\n";
            os << "      \"lookahead\": " << pk.lookahead << ",\n";
            os << "      \"windows\": " << pk.windows << ",\n";
            os << "      \"coupled_windows\": " << pk.coupledWindows
               << ",\n";
            os << "      \"serial_tail_seconds\": "
               << pk.serialTailSeconds << ",\n";
            os << "      \"run_seconds\": " << pk.runSeconds << ",\n";
            os << "      \"serial_tail_fraction\": "
               << (pk.runSeconds > 0.0
                       ? pk.serialTailSeconds / pk.runSeconds
                       : 0.0)
               << ",\n";
            const auto *mesh =
                dynamic_cast<const MeshNetwork *>(_net.get());
            os << "      \"cross_partition_flits\": "
               << (mesh ? mesh->crossPartitionFlits() : 0) << ",\n";
            os << "      \"partitions\": [";
            for (unsigned p = 0; p < pk.partitions; ++p) {
                os << (p ? ", " : "") << "{\"id\": " << p
                   << ", \"events\": " << pk.parts[p].events
                   << ", \"barrier_wait_seconds\": "
                   << pk.barrierWaitSeconds(p) << "}";
            }
            os << "]\n    }";
        }
        if (HostProfiler::enabled()) {
            os << ",\n    \"host_profile\": ";
            HostProfiler::writeJson(os, "    ");
        }
        os << "\n  },\n";
    }
    os << "  \"phases\": ";
    phasesJson(os, phases, _amap.hier());
    os << ",\n";
    // Remote misses injected but never completed. A quiescent run ends
    // at zero; nonzero means dropped completions (satellite of the
    // latency tracker's silent-drop fix — exported so sweeps can assert).
    os << "  \"unfinished_remote\": "
       << FlightRecorder::instance().latency().inFlight() << ",\n";
    const TxnTracer &txn = FlightRecorder::instance().txn();
    if (txn.enabled()) {
        os << "  \"txn\": {\"completed\": " << txn.completedCount()
           << ", \"abandoned\": " << txn.abandonedCount()
           << ", \"open\": " << txn.openCount() << "},\n";
        os << "  \"phase_quantiles\": ";
        txn.quantiles().writeJson(os);
        os << ",\n";
    }

    // Machine-wide aggregates: counters summed, accumulators merged with
    // the parallel-variance formula, bucketed stats reduced to their
    // sample count (full buckets live in nodes_detail).
    os << "  \"aggregate\": {";
    bool first_comp = true;
    for (const char *comp : statComponents) {
        const StatSet *shape = nullptr;
        for (const auto &node : _nodes)
            if ((shape = node->statSet(comp)))
                break;
        if (!shape)
            continue;
        os << (first_comp ? "\n" : ",\n");
        first_comp = false;
        os << "    \"" << comp << "\": {";
        bool first_stat = true;
        for (const auto &stat : shape->all()) {
            os << (first_stat ? "" : ", ");
            first_stat = false;
            jsonEscape(os, stat->name());
            os << ": ";
            if (dynamic_cast<const Counter *>(stat.get())) {
                os << sumCounter(comp, stat->name());
            } else if (dynamic_cast<const Accumulator *>(stat.get())) {
                Accumulator agg(stat->name(), stat->desc());
                for (const auto &node : _nodes) {
                    const StatSet *set = node->statSet(comp);
                    const Stat *s = set ? set->find(stat->name()) : nullptr;
                    if (const auto *acc =
                            dynamic_cast<const Accumulator *>(s))
                        agg.merge(*acc);
                }
                agg.json(os);
            } else {
                std::uint64_t count = 0;
                for (const auto &node : _nodes) {
                    const StatSet *set = node->statSet(comp);
                    const Stat *s = set ? set->find(stat->name()) : nullptr;
                    if (const auto *h = dynamic_cast<const Histogram *>(s))
                        count += h->count();
                    else if (const auto *d =
                                 dynamic_cast<const Distribution *>(s))
                        count += d->count();
                }
                os << "{\"count\": " << count << "}";
            }
        }
        os << "}";
    }
    os << "\n  },\n";

    os << "  \"network\": ";
    if (const StatSet *net = _net->statSet())
        net->json(os);
    else
        os << "{}";
    os << ",\n";

    os << "  \"nodes_detail\": [";
    for (unsigned i = 0; i < _nodes.size(); ++i) {
        os << (i ? ",\n" : "\n");
        os << "    {\"node\": " << i;
        for (const char *comp : statComponents) {
            const StatSet *set = _nodes[i]->statSet(comp);
            if (!set)
                continue;
            os << ", \"" << comp << "\": ";
            set->json(os);
        }
        os << "}";
    }
    os << "\n  ]\n";
    os << "}\n";
}

} // namespace limitless
