#include "machine/machine.hh"

#include <cassert>
#include <chrono>
#include <iostream>

#include "obs/flight_recorder.hh"
#include "obs/json.hh"
#include "obs/stats_json.hh"
#include "sim/log.hh"

namespace limitless
{

Machine::Machine(const MachineConfig &cfg)
    : _cfg(cfg),
      _amap(cfg.numNodes, cfg.lineBytes, cfg.bytesPerNode, cfg.mapping)
{
    const MeshTopology topo(cfg.resolvedMeshWidth(),
                            cfg.resolvedMeshHeight());
    assert(topo.numNodes() == cfg.numNodes &&
           "mesh dimensions must cover every node");

    if (cfg.makeNetwork)
        _net = cfg.makeNetwork(_eq);
    else if (cfg.network == NetworkKind::mesh)
        _net = std::make_unique<MeshNetwork>(_eq, topo, cfg.meshParams);
    else
        _net = std::make_unique<IdealNetwork>(_eq, topo, cfg.idealParams);
    assert(_net->numNodes() >= cfg.numNodes &&
           "network must cover every node");

    _nodes.reserve(cfg.numNodes);
    for (NodeId i = 0; i < cfg.numNodes; ++i)
        _nodes.push_back(std::make_unique<Node>(_eq, i, _amap, _cfg,
                                                *_net, _policy));

    // Let tick-less components (directories) timestamp trace events off
    // this machine's clock.
    FlightRecorder::instance().setClock(&_eq);
}

Machine::~Machine()
{
    FlightRecorder &fr = FlightRecorder::instance();
    if (fr.clock() == &_eq)
        fr.setClock(nullptr);
}

void
Machine::spawnOn(NodeId node_id, Processor::ThreadFn fn)
{
    _nodes.at(node_id)->processor().spawn(std::move(fn));
    ++_spawned;
}

RunResult
Machine::run(Tick max_cycles)
{
    RunResult result;
    if (_spawned == 0)
        fatal("Machine::run with no threads spawned");

    const auto host_start = std::chrono::steady_clock::now();
    auto host_elapsed = [host_start]() {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - host_start)
            .count();
    };

    unsigned finished = 0;
    Tick done_tick = 0;
    for (auto &node : _nodes) {
        node->processor().setOnThreadDone([&]() {
            ++finished;
            if (finished == _spawned)
                done_tick = _eq.now();
        });
    }
    for (auto &node : _nodes)
        node->processor().start();

    auto all_done = [&]() { return finished == _spawned; };

    // The watchdog polls total ops once per event burst; resolve the
    // counters up front instead of re-finding them by name each poll.
    std::vector<const Counter *> op_counters;
    op_counters.reserve(_nodes.size());
    for (const auto &node : _nodes)
        op_counters.push_back(static_cast<const Counter *>(
            node->statSet("proc")->find("ops")));
    auto progress = [&op_counters]() {
        std::uint64_t ops = 0;
        for (const Counter *c : op_counters)
            ops += c->value();
        return ops;
    };

    std::uint64_t last_ops = progress();
    Tick last_progress_tick = 0;
    std::uint64_t events = 0;
    bool done = false;

    while (!done) {
        // Run a burst, then poll completion and the deadlock watchdog.
        for (unsigned k = 0; k < 512; ++k) {
            if (!_eq.runOne()) {
                if (!all_done()) {
                    unsigned live = 0;
                    for (auto &n : _nodes)
                        live += n->processor().liveThreads();
                    panic("machine: event queue drained with %u live "
                          "threads — deadlock", live);
                }
                break;
            }
            ++events;
        }
        done = all_done();
        if (done)
            break;
        if (max_cycles && _eq.now() > max_cycles) {
            result.cycles = _eq.now();
            result.completed = false;
            result.events = events;
            result.hostSeconds = host_elapsed();
            return result;
        }
        const std::uint64_t ops = progress();
        if (ops != last_ops) {
            last_ops = ops;
            last_progress_tick = _eq.now();
        } else if (_eq.now() - last_progress_tick > _cfg.watchdogCycles) {
            dumpStats(std::cerr);
            panic("machine: no memory operation completed for %llu "
                  "cycles — livelock/deadlock at tick %llu",
                  (unsigned long long)_cfg.watchdogCycles,
                  (unsigned long long)_eq.now());
        }
    }

    result.cycles = done_tick;
    result.completed = true;

    // Drain in-flight protocol traffic (write-backs, final acks) so the
    // coherence monitor sees a quiescent machine.
    events += _eq.run();
    result.events = events;
    result.hostSeconds = host_elapsed();

    // Hooks must not dangle past this call.
    for (auto &node : _nodes)
        node->processor().setOnThreadDone(nullptr);
    return result;
}

bool
Machine::allThreadsDone() const
{
    for (const auto &node : _nodes)
        if (!node->processor().allDone())
            return false;
    return true;
}

std::uint64_t
Machine::sumCounter(const std::string &component,
                    const std::string &name) const
{
    std::uint64_t total = 0;
    for (const auto &node : _nodes) {
        const StatSet *set = node->statSet(component);
        if (!set)
            continue;
        if (const Stat *stat = set->find(name))
            total += static_cast<const Counter *>(stat)->value();
    }
    return total;
}

double
Machine::meanAccumulator(const std::string &component,
                         const std::string &name) const
{
    double sum = 0.0;
    std::uint64_t count = 0;
    for (const auto &node : _nodes) {
        const StatSet *set = node->statSet(component);
        if (!set)
            continue;
        if (const Stat *stat = set->find(name)) {
            const auto *acc = static_cast<const Accumulator *>(stat);
            sum += acc->sum();
            count += acc->count();
        }
    }
    return count ? sum / static_cast<double>(count) : 0.0;
}

double
Machine::overflowFraction() const
{
    const std::uint64_t traps = sumCounter("mem", "read_traps") +
                                sumCounter("mem", "write_traps");
    const std::uint64_t reqs =
        sumCounter("mem", "rreq") + sumCounter("mem", "wreq");
    return reqs ? static_cast<double>(traps) / reqs : 0.0;
}

void
Machine::dumpStats(std::ostream &os) const
{
    for (const auto &node : _nodes) {
        for (const char *comp : {"proc", "cache", "mem", "ipi", "handler"}) {
            const StatSet *set = node->statSet(comp);
            if (set)
                set->dump(os);
        }
    }
}

namespace
{

/** Components aggregated and detailed by dumpStatsJson. */
constexpr const char *statComponents[] = {"proc", "cache",   "mem",
                                          "ipi",  "handler", "trap"};

} // namespace

void
Machine::dumpStatsJson(std::ostream &os, Tick cycles,
                       const RunResult *run) const
{
    const PhaseBreakdown phases =
        FlightRecorder::instance().latency().snapshot();
    const double m = overflowFraction();
    const double ts = static_cast<double>(_cfg.protocol.softwareLatency);

    os << "{\n";
    os << "  \"schema\": \"limitless-stats-v1\",\n";
    os << "  \"protocol\": ";
    jsonEscape(os, _cfg.protocol.name());
    os << ",\n";
    os << "  \"nodes\": " << _cfg.numNodes << ",\n";
    os << "  \"seed\": " << _cfg.seed << ",\n";
    os << "  \"cycles\": " << cycles << ",\n";
    // The paper's model terms: T = Th + m * Ts.
    os << "  \"model\": {\"m\": " << m << ", \"ts\": " << ts
       << ", \"m_ts\": " << m * ts << "},\n";
    if (run) {
        os << "  \"host\": {\"seconds\": " << run->hostSeconds
           << ", \"events\": " << run->events
           << ", \"events_per_sec\": " << run->eventsPerSecond()
           << "},\n";
    }
    os << "  \"phases\": ";
    phasesJson(os, phases);
    os << ",\n";

    // Machine-wide aggregates: counters summed, accumulators merged with
    // the parallel-variance formula, bucketed stats reduced to their
    // sample count (full buckets live in nodes_detail).
    os << "  \"aggregate\": {";
    bool first_comp = true;
    for (const char *comp : statComponents) {
        const StatSet *shape = nullptr;
        for (const auto &node : _nodes)
            if ((shape = node->statSet(comp)))
                break;
        if (!shape)
            continue;
        os << (first_comp ? "\n" : ",\n");
        first_comp = false;
        os << "    \"" << comp << "\": {";
        bool first_stat = true;
        for (const auto &stat : shape->all()) {
            os << (first_stat ? "" : ", ");
            first_stat = false;
            jsonEscape(os, stat->name());
            os << ": ";
            if (dynamic_cast<const Counter *>(stat.get())) {
                os << sumCounter(comp, stat->name());
            } else if (dynamic_cast<const Accumulator *>(stat.get())) {
                Accumulator agg(stat->name(), stat->desc());
                for (const auto &node : _nodes) {
                    const StatSet *set = node->statSet(comp);
                    const Stat *s = set ? set->find(stat->name()) : nullptr;
                    if (const auto *acc =
                            dynamic_cast<const Accumulator *>(s))
                        agg.merge(*acc);
                }
                agg.json(os);
            } else {
                std::uint64_t count = 0;
                for (const auto &node : _nodes) {
                    const StatSet *set = node->statSet(comp);
                    const Stat *s = set ? set->find(stat->name()) : nullptr;
                    if (const auto *h = dynamic_cast<const Histogram *>(s))
                        count += h->count();
                    else if (const auto *d =
                                 dynamic_cast<const Distribution *>(s))
                        count += d->count();
                }
                os << "{\"count\": " << count << "}";
            }
        }
        os << "}";
    }
    os << "\n  },\n";

    os << "  \"network\": ";
    if (const StatSet *net = _net->statSet())
        net->json(os);
    else
        os << "{}";
    os << ",\n";

    os << "  \"nodes_detail\": [";
    for (unsigned i = 0; i < _nodes.size(); ++i) {
        os << (i ? ",\n" : "\n");
        os << "    {\"node\": " << i;
        for (const char *comp : statComponents) {
            const StatSet *set = _nodes[i]->statSet(comp);
            if (!set)
                continue;
            os << ", \"" << comp << "\": ";
            set->json(os);
        }
        os << "}";
    }
    os << "\n  ]\n";
    os << "}\n";
}

} // namespace limitless
