/**
 * @file
 * Whole-machine assembly and run loop: the top-level public API most
 * users touch. Build a MachineConfig, construct a Machine, install a
 * workload (or spawn thread programs directly), run(), read stats.
 */

#ifndef LIMITLESS_MACHINE_MACHINE_HH
#define LIMITLESS_MACHINE_MACHINE_HH

#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "machine/coherence_policy.hh"
#include "machine/machine_config.hh"
#include "machine/node.hh"
#include "network/network.hh"
#include "sim/event_queue.hh"

namespace limitless
{

class Telemetry;
struct ParallelKernelStats;

/** Outcome of Machine::run(). */
struct RunResult
{
    Tick cycles = 0;          ///< tick when the last thread finished
    bool completed = false;   ///< all threads ran to completion
    std::uint64_t events = 0; ///< simulator events executed
    double hostSeconds = 0.0; ///< wall-clock time spent inside run()

    /** Host throughput: simulator events per wall-clock second. */
    double
    eventsPerSecond() const
    {
        return hostSeconds > 0.0
                   ? static_cast<double>(events) / hostSeconds
                   : 0.0;
    }
};

/** A complete simulated multiprocessor. */
class Machine
{
  public:
    explicit Machine(const MachineConfig &cfg);
    ~Machine();

    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;

    const MachineConfig &config() const { return _cfg; }
    EventQueue &eventQueue() { return _eq; }

    /** Spatial partition count the machine was built with (1 = serial
     *  kernel). cfg.simThreads clamped to the partitionable units. */
    unsigned numPartitions() const { return _numParts; }
    const AddressMap &addressMap() const { return _amap; }
    const Topology &topology() const { return *_topo; }
    unsigned numNodes() const { return _cfg.numNodes; }
    Node &node(unsigned i) { return *_nodes.at(i); }
    const Node &node(unsigned i) const { return *_nodes.at(i); }
    Network &network() { return *_net; }

    /** Static coherence-type table (mark update-mode lines before the
     *  run starts; paper Section 6). */
    CoherencePolicy &policy() { return _policy; }
    const CoherencePolicy &policy() const { return _policy; }

    /** Bind a thread program to a hardware context on a node. */
    void spawnOn(NodeId node, Processor::ThreadFn fn);

    /** True once every spawned thread has completed (samplers use this
     *  as their stop predicate). */
    bool allThreadsDone() const;

    /**
     * Run until every spawned thread completes (then drain in-flight
     * protocol traffic), or until @p max_cycles (0 = no limit).
     */
    RunResult run(Tick max_cycles = 0);

    /** Sum a counter across all nodes, e.g. sumCounter("cache","misses"). */
    std::uint64_t sumCounter(const std::string &component,
                             const std::string &name) const;

    /** Machine-wide mean of an accumulator (weighted by sample count). */
    double meanAccumulator(const std::string &component,
                           const std::string &name) const;

    /** Aggregate LimitLESS overflow fraction (the model's m). */
    double overflowFraction() const;

    /** Dump every node's stats plus the network's. */
    void dumpStats(std::ostream &os) const;

    /**
     * Emit the whole machine's stats as one JSON document
     * ("limitless-stats-v1"): run metadata, the remote-miss phase
     * breakdown from the flight recorder's latency tracker, per-component
     * aggregates (counters summed, accumulators variance-merged across
     * nodes), network stats, and per-node detail. Pass the RunResult to
     * also emit a "host" block (wall seconds, events, events/sec).
     */
    void dumpStatsJson(std::ostream &os, Tick cycles = 0,
                       const RunResult *run = nullptr) const;

    /** Interval-sampled metrics; non-null iff cfg.metricsInterval > 0.
     *  Sampling starts/stops inside run(). */
    Telemetry *telemetry() { return _telemetry.get(); }

    /** Host-side utilization accounting of the parallel kernel, filled
     *  by run(); non-null iff numPartitions() > 1. */
    const ParallelKernelStats *pkStats() const { return _pkStats.get(); }

    /**
     * Write the telemetry CSV to @p csvPath and its JSON sidecar next to
     * it (telemetryJsonPathFor). @return the sidecar path. fatal()s when
     * telemetry is disabled or a file cannot be opened.
     */
    std::string writeTelemetry(const std::string &csvPath) const;

    /**
     * Write the transaction-trace JSON ("limitless-txn-v1": per-phase
     * quantiles plus the top-K slowest transactions with full span trees
     * and critical paths) to cfg.txnTraceOut. @return that path.
     * fatal()s when the tracer was not enabled for this machine.
     */
    std::string writeTxnTrace() const;

  private:
    void setupTelemetry();
    /** Window-parallel run loop (cfg.simThreads > 1). Simulated behavior
     *  is bit-identical to the serial run(); see sim/parallel_kernel.hh. */
    RunResult runParallel(Tick max_cycles);
    MachineConfig _cfg;
    EventQueue _eq;
    std::shared_ptr<const Topology> _topo;
    AddressMap _amap;
    CoherencePolicy _policy;
    std::unique_ptr<Network> _net;
    /** Parallel-kernel partitioning (numParts == 1 leaves these empty
     *  except _partQueues[0] == &_eq). Queues must outlive the nodes
     *  scheduling on them, so they are declared first. */
    unsigned _numParts = 1;
    std::vector<unsigned> _partOf;                      ///< node -> partition
    std::vector<std::unique_ptr<EventQueue>> _workerQueues;
    std::vector<EventQueue *> _partQueues;              ///< [0] == &_eq
    std::unique_ptr<ParallelKernelStats> _pkStats;      ///< numParts > 1
    std::vector<std::unique_ptr<Node>> _nodes;
    std::unique_ptr<Telemetry> _telemetry;
    /** The shared producer-side histogram sinks registered by
     *  setupTelemetry (null when telemetry is off); runParallel swaps in
     *  per-partition shadows and merges them back here. */
    class Log2Histogram *_wsSink = nullptr;
    class Log2Histogram *_svcSink = nullptr;
    unsigned _spawned = 0;
};

} // namespace limitless

#endif // LIMITLESS_MACHINE_MACHINE_HH
