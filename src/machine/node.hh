/**
 * @file
 * One Alewife processing node: SPARCLE processor, direct-mapped cache,
 * a slice of globally shared memory with its directory, and the IPI
 * network interface (paper Figure 1).
 */

#ifndef LIMITLESS_MACHINE_NODE_HH
#define LIMITLESS_MACHINE_NODE_HH

#include <memory>

#include "cache/cache_controller.hh"
#include "hier/chip_home.hh"
#include "ipi/ipi_interface.hh"
#include "kernel/limitless_handler.hh"
#include "kernel/trap_dispatcher.hh"
#include "machine/machine_config.hh"
#include "mem/memory_controller.hh"
#include "network/network.hh"
#include "proc/processor.hh"

namespace limitless
{

/** A processing node and its internal wiring. */
class Node
{
  public:
    Node(EventQueue &eq, NodeId id, const AddressMap &amap,
         const MachineConfig &cfg, Network &net,
         const CoherencePolicy &policy);

    NodeId id() const { return _id; }
    Processor &processor() { return *_proc; }
    CacheController &cache() { return *_cache; }
    MemoryController &mem() { return *_mem; }
    IpiInterface &ipi() { return *_ipi; }
    /** Non-null only for LimitLESS full-emulation machines. */
    LimitlessHandler *handler() { return _handler.get(); }
    /** Non-null only in two-level (--hier) machines. */
    ChipHomeController *chipHome() { return _chip.get(); }
    const ChipHomeController *chipHome() const { return _chip.get(); }

    /** Software interrupt dispatch: protocol traps + active messages. */
    TrapDispatcher &dispatcher() { return *_dispatcher; }

    const Processor &processor() const { return *_proc; }
    const CacheController &cache() const { return *_cache; }
    const MemoryController &mem() const { return *_mem; }
    const IpiInterface &ipi() const { return *_ipi; }

    /** Outbound path used by every on-node component. */
    void sendFrom(PacketPtr pkt);

    /** Inbound dispatch (network receiver + local loopback). */
    void deliver(PacketPtr pkt);

    /** Look up one of this node's stat sets by component name
     *  ("proc", "cache", "mem", "ipi", "handler"); nullptr if unknown. */
    const StatSet *statSet(const std::string &component) const;

  private:
    EventQueue &_eq;
    NodeId _id;
    const AddressMap &_amap;
    Tick _localHopLatency;
    Network &_net;

    std::unique_ptr<CacheController> _cache;
    std::unique_ptr<MemoryController> _mem;
    std::unique_ptr<ChipHomeController> _chip;
    std::unique_ptr<Processor> _proc;
    std::unique_ptr<IpiInterface> _ipi;
    std::unique_ptr<TrapDispatcher> _dispatcher;
    std::unique_ptr<LimitlessHandler> _handler;
};

} // namespace limitless

#endif // LIMITLESS_MACHINE_NODE_HH
