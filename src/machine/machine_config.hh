/**
 * @file
 * Whole-machine configuration: one struct describing an Alewife-like
 * machine instance (sizes, protocol, network model, timing).
 */

#ifndef LIMITLESS_MACHINE_MACHINE_CONFIG_HH
#define LIMITLESS_MACHINE_MACHINE_CONFIG_HH

#include <functional>
#include <memory>
#include <string>

#include "cache/cache_controller.hh"
#include "kernel/kernel_costs.hh"
#include "machine/address_map.hh"
#include "mem/memory_controller.hh"
#include "network/ideal_network.hh"
#include "network/mesh_network.hh"
#include "proc/processor.hh"
#include "proto/protocol_params.hh"

namespace limitless
{

/** Which network model to instantiate (design decision D5). */
enum class NetworkKind { mesh, ideal };

/** Configuration of one simulated machine. */
struct MachineConfig
{
    unsigned numNodes = 64;

    /**
     * Interconnect shape: kind (mesh / torus / express mesh), grid
     * dimensions (width 0 picks the most square factorization), express
     * stride, and the cluster size partitioning nodes into chips for
     * the hierarchical addressing seam. The defaults reproduce the
     * paper's 8x8 mesh exactly.
     */
    TopologyParams topology;

    /**
     * Two-level composable coherence (--hier): per-chip home directories
     * under the inter-chip directory at the global home. Requires
     * topology.clusterSize > 1; with clusterSize 1 the mode is rejected
     * up front (and the flat path stays byte-identical when off).
     */
    bool hier = false;

    unsigned lineBytes = 16; ///< Alewife coherence unit
    HomeMapping mapping = HomeMapping::interleaved;
    std::uint64_t bytesPerNode = 4ull << 20;

    ProtocolParams protocol;
    CacheParams cache;
    MemParams mem;
    ProcParams proc;
    KernelCosts kernel;

    NetworkKind network = NetworkKind::mesh;
    WormholeParams meshParams;
    IdealNetworkParams idealParams;

    /**
     * Test/checker hook: when set, overrides `network` with a
     * caller-built fabric (e.g. the model checker's ControlledNetwork,
     * which holds packets until the exploration delivers them).
     */
    std::function<std::unique_ptr<Network>(EventQueue &)> makeNetwork;

    /** Cache <-> local memory controller hop (no network involved). */
    Tick localHopLatency = 2;

    std::size_t ipiInputCapacity = 16;

    std::uint64_t seed = 1;

    /**
     * Telemetry sampling interval in simulated cycles; 0 (the default)
     * disables the subsystem entirely — no sinks are installed and the
     * instrumented hot paths see null pointers.
     */
    Tick metricsInterval = 0;

    /** Telemetry CSV output path (harness convention; the JSON sidecar
     *  lands next to it). Empty = caller writes explicitly. */
    std::string telemetryOut;

    /**
     * Transaction-trace JSON output path (schema limitless-txn-v1).
     * Non-empty enables the per-transaction causal tracer for the run
     * (span trees, critical paths, per-phase quantiles); empty — the
     * default — guarantees the tracer is off and the simulation output
     * is bit-identical to an uninstrumented build.
     */
    std::string txnTraceOut;

    /** Slowest transactions retained in full in the trace export. */
    std::size_t txnTopK = 16;

    /** Watchdog: abort if no thread completes an op for this long. */
    Tick watchdogCycles = 4'000'000;

    /**
     * Intra-run parallelism: shard the machine's nodes into this many
     * spatial partitions, each driven by its own event queue, and run
     * the partitions on worker threads under the conservative windowed
     * kernel (src/sim/parallel_kernel.hh). 1 (the default) is the
     * serial kernel, byte-identical to every prior release; any other
     * value produces the same simulated behaviour — stats, telemetry,
     * figure outputs — bit-identically, just faster. Clamped to
     * numNodes (and to the cluster count under --hier).
     */
    unsigned simThreads = 1;

    /**
     * Add the host-side pk.* utilization columns (per-partition events
     * and barrier-wait time, window counts, serial-tail seconds) to the
     * telemetry stream of a parallel run. Off by default: the columns
     * describe the *host* execution, so they are not byte-identical
     * across thread counts the way every simulated-machine column is
     * (the cross-thread determinism suite compares the default set).
     * No effect when simThreads == 1 or telemetry is off.
     */
    bool pkTelemetry = false;

    /** Resolved grid width (workload neighbor math, summaries). */
    unsigned
    resolvedMeshWidth() const
    {
        if (topology.width)
            return topology.width;
        unsigned w = 1;
        for (unsigned d = 1; d * d <= numNodes; ++d)
            if (numNodes % d == 0)
                w = d;
        return numNodes / w; // wider than tall for non-squares
    }

    unsigned
    resolvedMeshHeight() const
    {
        return numNodes / resolvedMeshWidth();
    }

    /** Build the configured interconnect topology. */
    std::shared_ptr<const Topology>
    makeTopology() const
    {
        return limitless::makeTopology(topology, numNodes);
    }
};

} // namespace limitless

#endif // LIMITLESS_MACHINE_MACHINE_CONFIG_HH
