/**
 * @file
 * Global address space layout: line geometry and home-node mapping.
 *
 * Alewife distributes globally shared memory (and with it the directory)
 * across the processing nodes. We support two mappings:
 *  - interleaved (default): consecutive memory lines rotate around the
 *    nodes, like low-order-bit interleaving;
 *  - ranged: each node owns one contiguous slab.
 *
 * Workloads place data deliberately via addrOnNode(), which inverts the
 * mapping so a variable can be given a specific home node.
 */

#ifndef LIMITLESS_MACHINE_ADDRESS_MAP_HH
#define LIMITLESS_MACHINE_ADDRESS_MAP_HH

#include <bit>
#include <cassert>

#include "sim/types.hh"

namespace limitless
{

/** Home-node selection policy. */
enum class HomeMapping { interleaved, ranged };

/** Address geometry and home mapping for one machine. */
class AddressMap
{
  public:
    /**
     * @param num_nodes    nodes in the machine
     * @param line_bytes   coherence unit (16 in Alewife)
     * @param bytes_per_node memory per node, for ranged mapping
     * @param mapping      interleaved or ranged
     * @param cluster_size nodes per chip/cluster (must divide
     *                     num_nodes). With clusters, interleaving
     *                     rotates consecutive lines across chips first
     *                     and across a chip's nodes second, so one
     *                     chip's nodes own every numClusters()-th line
     *                     — the contiguous-ownership seam a two-level
     *                     (per-chip) directory delegates through.
     *                     1 (default) reproduces flat interleaving.
     */
    AddressMap(unsigned num_nodes, unsigned line_bytes,
               std::uint64_t bytes_per_node = 4ull << 20,
               HomeMapping mapping = HomeMapping::interleaved,
               unsigned cluster_size = 1)
        : _numNodes(num_nodes), _lineBytes(line_bytes),
          _bytesPerNode(bytes_per_node), _mapping(mapping),
          _clusterSize(cluster_size),
          _lineShift(static_cast<unsigned>(
              std::countr_zero(static_cast<unsigned>(line_bytes)))),
          _nodesPow2((num_nodes & (num_nodes - 1)) == 0)
    {
        assert(num_nodes >= 1);
        assert(line_bytes >= bytesPerWord &&
               (line_bytes & (line_bytes - 1)) == 0);
        assert(line_bytes / bytesPerWord <= maxWordsPerLine);
        assert(cluster_size >= 1 && num_nodes % cluster_size == 0 &&
               "cluster size must divide the node count");
    }

    /** Most words per line any configuration may use (storage bound). */
    static constexpr unsigned maxWordsPerLine = 8;

    unsigned numNodes() const { return _numNodes; }
    unsigned clusterSize() const { return _clusterSize; }
    unsigned numClusters() const { return _numNodes / _clusterSize; }
    unsigned lineBytes() const { return _lineBytes; }
    unsigned lineShift() const { return _lineShift; }
    unsigned wordsPerLine() const { return _lineBytes / bytesPerWord; }
    std::uint64_t bytesPerNode() const { return _bytesPerNode; }

    /** Align an address down to its line. */
    Addr lineAddr(Addr a) const { return a & ~static_cast<Addr>(_lineBytes - 1); }

    /** Word index within the line. */
    unsigned
    wordOf(Addr a) const
    {
        // lineBytes is a power of two; mask instead of dividing — this
        // runs on every access.
        return static_cast<unsigned>((a & (_lineBytes - 1)) / bytesPerWord);
    }

    /** Cluster (chip) a node belongs to. */
    unsigned clusterOf(NodeId node) const { return node / _clusterSize; }

    /** Two-level mode: route chip-crossing misses via per-chip homes. */
    bool hier() const { return _hier; }
    void
    setHier(bool on)
    {
        assert((!on || _clusterSize > 1) &&
               "hierarchical mode needs clusterSize > 1");
        _hier = on;
    }

    /**
     * Node hosting @p chip's per-chip directory entry for address @p a.
     * Mirrors the within-chip digit of homeOf(), so the slice of lines
     * a node chip-homes on a remote chip matches the slice it
     * global-homes on its own chip; on the home chip the two coincide
     * (the global home doubles as that chip's chip home).
     */
    NodeId
    chipHomeOf(Addr a, unsigned chip) const
    {
        assert(_clusterSize > 1);
        const std::uint64_t line = a >> _lineShift;
        const unsigned clusters = _numNodes / _clusterSize;
        const unsigned within =
            static_cast<unsigned>((line / clusters) % _clusterSize);
        return static_cast<NodeId>(chip * _clusterSize + within);
    }

    /**
     * Where node @p self sends a cacheable request (RREQ/WREQ/REPM/REPC)
     * for address @p a: the global home when flat or when @p self shares
     * the home's chip; otherwise @p self's own chip home, which fills
     * from (and is invalidated by) the global home on the chip's behalf.
     * Uncached operations (RUNC/WUPD) always go to the global home.
     */
    NodeId
    requestTargetFor(Addr a, NodeId self) const
    {
        const NodeId home = homeOf(a);
        if (!_hier || clusterOf(self) == clusterOf(home))
            return home;
        return chipHomeOf(a, clusterOf(self));
    }

    /** Home node owning an address's directory entry. */
    NodeId
    homeOf(Addr a) const
    {
        const std::uint64_t line = a >> _lineShift;
        if (_mapping == HomeMapping::interleaved) {
            if (_clusterSize > 1) {
                // Rotate across chips first, then across the chip's
                // nodes: chip c's nodes own lines congruent to c mod
                // numClusters(), the delegation unit of the two-level
                // directory seam.
                const unsigned clusters = _numNodes / _clusterSize;
                const unsigned chip =
                    static_cast<unsigned>(line % clusters);
                const unsigned within = static_cast<unsigned>(
                    (line / clusters) % _clusterSize);
                return static_cast<NodeId>(chip * _clusterSize + within);
            }
            // Power-of-two node counts (all the figure machines) avoid
            // the 64-bit modulo on this per-access path.
            if (_nodesPow2)
                return static_cast<NodeId>(line & (_numNodes - 1));
            return static_cast<NodeId>(line % _numNodes);
        }
        return static_cast<NodeId>((a / _bytesPerNode) % _numNodes);
    }

    /**
     * Address of the @p slot'th line homed at @p node (word 0).
     * Inverse of homeOf(); used by workloads for deliberate placement.
     */
    Addr
    addrOnNode(NodeId node, std::uint64_t slot) const
    {
        assert(node < _numNodes);
        if (_mapping == HomeMapping::interleaved) {
            if (_clusterSize > 1) {
                const unsigned clusters = _numNodes / _clusterSize;
                const std::uint64_t chip = node / _clusterSize;
                const std::uint64_t within = node % _clusterSize;
                return ((slot * _clusterSize + within) * clusters + chip) *
                       _lineBytes;
            }
            return (slot * _numNodes + node) * _lineBytes;
        }
        return node * _bytesPerNode + slot * _lineBytes;
    }

  private:
    unsigned _numNodes;
    unsigned _lineBytes;
    std::uint64_t _bytesPerNode;
    HomeMapping _mapping;
    unsigned _clusterSize;
    unsigned _lineShift;
    bool _nodesPow2;
    bool _hier = false;
};

} // namespace limitless

#endif // LIMITLESS_MACHINE_ADDRESS_MAP_HH
